(** Wire protocol of the co-scheduling daemon.

    Pure codec: values in, JSON strings out, and back — no sockets, no
    clocks, no scheduler state, so the whole protocol is testable
    without a daemon.  Payloads are single-line UTF-8 JSON objects
    carried inside {!Frame}s; every object has a ["v"] field naming the
    protocol version so old clients fail with a structured error rather
    than a parse crash.

    Decoding never raises: malformed input comes back as
    [Error (code, message)] with a {!error_code} the daemon can serialise
    straight into an error reply. *)

val version : int
(** Protocol version stamped into (and required of) every payload. *)

type app_spec = {
  name : string;        (** Human label, echoed in views. *)
  w : float;            (** Sequential work (paper's [w_i]). *)
  s : float;            (** Speedup-profile exponent. *)
  f : float;            (** Cache-sensitive fraction of the work. *)
  m0 : float;           (** Miss-rate scale at one cache fraction. *)
  c0 : float;           (** Cache-pressure offset. *)
  footprint : float;    (** Working-set bytes; [infinity] = unbounded
                            (omitted on the wire). *)
}
(** Application parameters as submitted by a client; converted to a
    validated {!Model.App.t} by the daemon backend. *)

type query = Stats | Status | Allocs | Job of int
(** What a [query] verb asks for: cumulative service metrics, a coarse
    daemon status line, the current per-job allocations, or one job. *)

type verb =
  | Submit of app_spec    (** Admit a new job. *)
  | Cancel of int         (** Remove a job by id. *)
  | Query of query        (** Read-only introspection. *)
  | Subscribe of bool     (** Toggle push events on this connection. *)
  | Drain                 (** Run every live job to completion. *)
  | Ping                  (** Liveness probe. *)
(** Request verbs understood by the daemon. *)

type request = { rid : int; sid : string option; at : float option; verb : verb }
(** A client request: [rid] is echoed in the response so clients can
    pipeline; [at] optionally advances the daemon's model clock to that
    time first (requests with no [at] happen "now").  [sid] is an
    optional client-chosen session id: a client that reconnects and
    resends under the same [(sid, rid)] pair is deduplicated by the
    backend, making retried mutations exactly-once (see
    {!Backend.handle}). *)

type error_code =
  | Bad_request           (** Unparseable or ill-typed payload. *)
  | Unknown_verb          (** Well-formed, but the verb is not ours. *)
  | Unsupported_version   (** ["v"] field present but not {!version}. *)
  | Overload              (** Admission control: queue depth exceeded. *)
  | Draining              (** Daemon is shutting down; no new work. *)
  | Unknown_job           (** No job with that id. *)
  | Timeout               (** Deadline elapsed (slow client / drain). *)
  | Internal              (** Daemon-side invariant failure. *)
(** Structured failure taxonomy carried by error replies. *)

val error_code_name : error_code -> string
(** Stable wire name of a code (kebab-case). *)

val error_code_of_name : string -> error_code option
(** Inverse of {!error_code_name}; [None] on unknown names. *)

type job_state = Queued | Running | Done | Cancelled
(** Lifecycle of a job as seen through query replies. *)

val job_state_name : job_state -> string
(** Stable wire name of a state. *)

val job_state_of_name : string -> job_state option
(** Inverse of {!job_state_name}; [None] on unknown names. *)

type job_view = {
  job : int;              (** Daemon-assigned id (dense from 0). *)
  state : job_state;
  procs : float;          (** Processors currently assigned. *)
  cache : float;          (** Cache fraction currently assigned. *)
  remaining : float;      (** Sequential work still to do. *)
  arrival : float;        (** Model time the job was admitted. *)
  finish : float option;  (** Completion time once [Done]. *)
}
(** Snapshot of one job, as returned by [Query (Job _)] and [Query Allocs]. *)

type reply =
  | R_submitted of { job : int }
      (** Job admitted under this id. *)
  | R_cancelled of { job : int; was_live : bool }
      (** Cancel processed; [was_live] is false if the job had already
          finished (or never ran) by the effective cancel time. *)
  | R_job of job_view
      (** Answer to [Query (Job _)]. *)
  | R_stats of { time : float; clients : int; metrics : Online.Metrics.t }
      (** Answer to [Query Stats]: full service metrics including the
          warm/cold solver counters. *)
  | R_status of {
      time : float;
      live : int;           (** Jobs not yet finished. *)
      queued : int;         (** Live jobs with no processors. *)
      running : int;        (** Live jobs with processors. *)
      clients : int;        (** Connected clients. *)
      draining : bool;
      recovered : int;      (** Journal entries replayed at start-up. *)
      shed : bool;          (** Load-shed mode active (submits rejected
                                until the queue falls to the low-water
                                mark). *)
      snapshots : int;      (** Snapshots written since start-up. *)
    }
      (** Answer to [Query Status]. *)
  | R_allocs of { time : float; k : float option; jobs : job_view array }
      (** Answer to [Query Allocs]; [k] is the current makespan target
          of the equalizing solver (absent before the first solve). *)
  | R_subscribed of { on : bool }
      (** Subscription toggled. *)
  | R_drained of { time : float; completed : int }
      (** Drain finished at model time [time]. *)
  | R_pong
      (** Answer to [Ping]. *)
  | R_error of {
      code : error_code;
      message : string;
      retry_after : float option;
    }
      (** Any failure; the connection stays usable.  [retry_after] is a
          wall-clock hint in seconds on [Overload] errors — when to try
          the submit again. *)
(** Response bodies. *)

type response = { rid : int; epoch : int; reply : reply }
(** A response, tagged with the request's [rid] and the daemon's solve
    epoch (count of incremental re-solves) at reply time — clients can
    tell which allocation generation an answer reflects. *)

type push =
  | P_resolved of { time : float; epoch : int; k : float }
      (** The solver produced a new allocation with makespan target [k]. *)
  | P_completed of { time : float; job : int }
      (** A job ran to completion. *)
  | P_drained of { time : float }
      (** The daemon finished draining and is about to exit. *)
(** Unsolicited events sent to subscribed clients. *)

type incoming = Reply of response | Event of push
(** What a client can read off the socket: a response to one of its
    requests, or a push event. *)

val utf8_valid : string -> bool
(** Strict RFC 3629 check (rejects overlong forms, surrogates, values
    past U+10FFFF).  Decoders run it before JSON parsing so invalid
    bytes yield a structured [Bad_request], never an exception. *)

val encode_request : request -> string
(** One-line JSON payload for a request (no framing). *)

val decode_request : string -> (request, error_code * string) result
(** Parse a request payload.  Never raises: UTF-8 violations, JSON
    errors, missing or ill-typed fields map to [Bad_request]; a wrong
    ["v"] maps to [Unsupported_version]; an unrecognised verb to
    [Unknown_verb]. *)

val encode_response : response -> string
(** One-line JSON payload for a response (no framing).  Includes an
    ["ok"] boolean so shell clients can branch without matching the
    reply kind. *)

val encode_push : push -> string
(** One-line JSON payload for a push event (no framing). *)

val decode_incoming : string -> (incoming, error_code * string) result
(** Client-side parse of anything the daemon sends: payloads with an
    ["event"] field decode as {!Event}, everything else as {!Reply}.
    Same no-raise contract as {!decode_request}. *)
