exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type t = {
  fd : Unix.file_descr;
  sid : string option;
  decoder : Frame.decoder;
  mutable next_rid : int;
  pushes : Protocol.push Queue.t;
  mutable closed : bool;
}

(* Distinct connections sharing a --sid must not collide on the
   backend's (sid, rid) dedup key, so a session-id connection draws its
   first rid from the clock and pid instead of 0.  Only a client that
   deliberately replays the same rid (Retry_client pins one per logical
   request) is treated as a retransmission.  40-bit mask keeps every
   rid this connection can issue far below the codec's 2^53 guard. *)
let fresh_rid_base () =
  let usec = Int64.of_float (Unix.gettimeofday () *. 1e6) in
  let mixed = Int64.logxor usec (Int64.of_int (Unix.getpid () * 0x9E3779B1)) in
  Int64.to_int (Int64.logand mixed 0xFF_FFFF_FFFFL)

let make ?sid fd =
  {
    fd;
    sid;
    decoder = Frame.decoder ();
    next_rid = (match sid with None -> 0 | Some _ -> fresh_rid_base ());
    pushes = Queue.create ();
    closed = false;
  }

let connect_with ?sid ~retries ~delay addr =
  let rec go attempt =
    let domain = Unix.domain_of_sockaddr addr in
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> make ?sid fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT | EAGAIN), _, _)
      when attempt < retries ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ignore (Unix.select [] [] [] delay);
      go (attempt + 1)
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      fail "connect failed: %s" (Unix.error_message e)
  in
  go 0

let connect ?sid ?(retries = 50) ?(delay = 0.1) path =
  connect_with ?sid ~retries ~delay (Unix.ADDR_UNIX path)

let connect_tcp ?sid ?(retries = 50) ?(delay = 0.1) ~port () =
  connect_with ?sid ~retries ~delay (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all t s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write_substring t.fd s !pos (n - !pos) with
    | written -> pos := !pos + written
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
      fail "write failed: %s" (Unix.error_message e)
  done

let post t ?at verb =
  if t.closed then fail "client is closed";
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  write_all t (Frame.encode (Protocol.encode_request { rid; sid = t.sid; at; verb }));
  rid

let read_buf = Bytes.create 65536

let receive t =
  if t.closed then fail "client is closed";
  let rec go () =
    match Frame.next t.decoder with
    | `Frame payload -> (
      match Protocol.decode_incoming payload with
      | Ok incoming -> incoming
      | Error (code, msg) ->
        fail "undecodable server frame (%s): %s" (Protocol.error_code_name code) msg)
    | `Error msg -> fail "framing error from server: %s" msg
    | `Await -> (
      match Unix.read t.fd read_buf 0 (Bytes.length read_buf) with
      | 0 -> fail "connection closed by daemon"
      | n ->
        Frame.feed t.decoder (Bytes.sub_string read_buf 0 n);
        go ()
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error (e, _, _) ->
        fail "read failed: %s" (Unix.error_message e))
  in
  go ()

let receive_reply t ~rid =
  let rec go () =
    match receive t with
    | Protocol.Event p ->
      Queue.add p t.pushes;
      go ()
    | Protocol.Reply r when r.rid = rid -> r
    | Protocol.Reply r -> fail "response for unexpected request id %d" r.rid
  in
  go ()

let request t ?at verb =
  let rid = post t ?at verb in
  receive_reply t ~rid

let pushes t =
  let rec go acc =
    match Queue.take_opt t.pushes with
    | None -> List.rev acc
    | Some p -> go (p :: acc)
  in
  go []

let wait_push t =
  match Queue.take_opt t.pushes with
  | Some p -> p
  | None -> (
    match receive t with
    | Protocol.Event p -> p
    | Protocol.Reply r ->
      fail "unsolicited response for request id %d while waiting for a push" r.rid)
