type t = {
  fd : Unix.file_descr;
  id : int;
  decoder : Frame.decoder;
  outq : string Queue.t;
  mutable head_pos : int;
  mutable out_bytes : int;
  max_out : int;
  mutable subscribed : bool;
  mutable closing : bool;
  mutable blocked_since : float option;
  mutable last_active : float;
  mutable dropped_pushes : int;
}

let default_max_out = 4 * 1024 * 1024

let create ?max_frame ?(max_out = default_max_out) ~id ~now fd =
  if max_out < 1 then invalid_arg "Session.create: max_out must be positive";
  {
    fd;
    id;
    decoder = Frame.decoder ?max_frame ();
    outq = Queue.create ();
    head_pos = 0;
    out_bytes = 0;
    max_out;
    subscribed = false;
    closing = false;
    blocked_since = None;
    last_active = now;
    dropped_pushes = 0;
  }

let fd t = t.fd
let id t = t.id
let subscribed t = t.subscribed
let set_subscribed t on = t.subscribed <- on
let closing t = t.closing
let close_after_flush t = t.closing <- true
let blocked_since t = t.blocked_since
let last_active t = t.last_active
let touch t ~now = t.last_active <- now
let pending_out t = t.out_bytes
let dropped_pushes t = t.dropped_pushes
let note_dropped_push t = t.dropped_pushes <- t.dropped_pushes + 1

let send t payload =
  let frame = Frame.encode payload in
  if t.out_bytes + String.length frame > t.max_out then false
  else begin
    Queue.add frame t.outq;
    t.out_bytes <- t.out_bytes + String.length frame;
    true
  end

(* Eviction support: discard queued output, but never a frame the socket
   has already seen part of — truncating mid-frame would hand the client
   a torn length-prefixed stream instead of a clean close. *)
let truncate_out t =
  let dropped = ref 0 in
  let head =
    if t.head_pos > 0 && not (Queue.is_empty t.outq) then Some (Queue.pop t.outq)
    else None
  in
  while not (Queue.is_empty t.outq) do
    ignore (Queue.pop t.outq : string);
    incr dropped
  done;
  t.out_bytes <-
    (match head with
    | Some h ->
      Queue.add h t.outq;
      String.length h - t.head_pos
    | None -> 0);
  !dropped

(* One shared scratch buffer: the daemon is single-threaded by design. *)
let read_buf = Bytes.create 65536

let read t =
  match Unix.read t.fd read_buf 0 (Bytes.length read_buf) with
  | 0 -> `Eof
  | n ->
    Frame.feed t.decoder (Bytes.sub_string read_buf 0 n);
    `Data
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> `Data
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> `Eof

let next_frame t = Frame.next t.decoder

let flush t ~now =
  if t.out_bytes = 0 then begin
    t.blocked_since <- None;
    `Idle
  end
  else begin
    let progress = ref true and closed = ref false in
    while !progress && (not !closed) && t.out_bytes > 0 do
      let head = Queue.peek t.outq in
      let len = String.length head - t.head_pos in
      match Unix.write_substring t.fd head t.head_pos len with
      | n ->
        t.out_bytes <- t.out_bytes - n;
        if n = len then begin
          ignore (Queue.pop t.outq : string);
          t.head_pos <- 0
        end
        else begin
          t.head_pos <- t.head_pos + n;
          progress := false
        end
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        progress := false
      | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
        closed := true
    done;
    if !closed then `Closed
    else if t.out_bytes = 0 then begin
      t.blocked_since <- None;
      `Idle
    end
    else begin
      if t.blocked_since = None then t.blocked_since <- Some now;
      `Blocked
    end
  end

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
