type t = {
  fd : Unix.file_descr;
  id : int;
  decoder : Frame.decoder;
  out : Buffer.t;
  mutable out_pos : int;
  mutable subscribed : bool;
  mutable closing : bool;
  mutable blocked_since : float option;
}

let create ?max_frame ~id fd =
  {
    fd;
    id;
    decoder = Frame.decoder ?max_frame ();
    out = Buffer.create 512;
    out_pos = 0;
    subscribed = false;
    closing = false;
    blocked_since = None;
  }

let fd t = t.fd
let id t = t.id
let subscribed t = t.subscribed
let set_subscribed t on = t.subscribed <- on
let closing t = t.closing
let close_after_flush t = t.closing <- true
let blocked_since t = t.blocked_since
let send t payload = Buffer.add_string t.out (Frame.encode payload)
let pending_out t = Buffer.length t.out - t.out_pos

(* One shared scratch buffer: the daemon is single-threaded by design. *)
let read_buf = Bytes.create 65536

let read t =
  match Unix.read t.fd read_buf 0 (Bytes.length read_buf) with
  | 0 -> `Eof
  | n ->
    Frame.feed t.decoder (Bytes.sub_string read_buf 0 n);
    `Data
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> `Data
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> `Eof

let next_frame t = Frame.next t.decoder

let flush t ~now =
  let pending = pending_out t in
  if pending = 0 then begin
    t.blocked_since <- None;
    `Idle
  end
  else
    match Unix.write_substring t.fd (Buffer.contents t.out) t.out_pos pending with
    | n ->
      t.out_pos <- t.out_pos + n;
      if pending_out t = 0 then begin
        Buffer.clear t.out;
        t.out_pos <- 0;
        t.blocked_since <- None;
        `Idle
      end
      else begin
        if t.blocked_since = None then t.blocked_since <- Some now;
        `Blocked
      end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      if t.blocked_since = None then t.blocked_since <- Some now;
      `Blocked
    | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> `Closed

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
