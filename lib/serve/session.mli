(** Per-connection state of the daemon: a non-blocking socket, an
    incremental {!Frame} decoder for the inbound byte stream, and a
    {e bounded} outbound frame queue drained opportunistically by the
    [select] loop.

    Writes never block the daemon: responses and pushes are enqueued as
    whole frames and flushed when the socket is writable.  The queue is
    bounded by [max_out] bytes; {!send} refuses (returns [false]) once
    the bound would be exceeded, and the daemon decides the consequence
    — pushes to a slow subscriber are dropped and counted, while an
    unflushable {e response} evicts the client ({!truncate_out} + an
    eviction notice + close).  Frame boundaries survive all of this:
    truncation never discards a partially-written head frame, so a slow
    reader sees a clean prefix of valid frames followed by EOF, never a
    torn frame.

    A session that stays write-blocked past the daemon's client deadline
    is dropped, and one idle past the idle timeout is reaped — one slow
    or dead client must not stall the scheduler or hold a connection
    slot for everyone else. *)

type t
(** One client connection. *)

val default_max_out : int
(** Default outbound bound: 4 MiB. *)

val create : ?max_frame:int -> ?max_out:int -> id:int -> now:float -> Unix.file_descr -> t
(** Wrap an accepted (already non-blocking) socket.  [max_frame] bounds
    inbound frame payloads (default {!Frame.default_max_frame});
    [max_out] bounds buffered outbound bytes (default
    {!default_max_out}); [id] is a daemon-assigned label used in logs;
    [now] seeds the last-activity clock.
    @raise Invalid_argument if [max_out < 1]. *)

val fd : t -> Unix.file_descr
(** The underlying socket (for [select] sets). *)

val id : t -> int
(** The daemon-assigned connection id. *)

val subscribed : t -> bool
(** Whether this client receives push events. *)

val set_subscribed : t -> bool -> unit
(** Toggle push-event delivery. *)

val closing : t -> bool
(** Whether the session is flush-then-close: no further reads are
    served, pending output is still drained. *)

val close_after_flush : t -> unit
(** Mark the session closing (graceful: pending output survives). *)

val blocked_since : t -> float option
(** Wall-clock time the outbound queue first failed to flush fully;
    [None] while writes keep up.  The daemon's slow-client deadline. *)

val last_active : t -> float
(** Wall-clock time of the last inbound activity ({!touch}); the
    daemon's idle-reaping clock.  Clients keep a quiet connection alive
    with [Ping] heartbeats. *)

val touch : t -> now:float -> unit
(** Record inbound activity at [now]. *)

val send : t -> string -> bool
(** Frame a payload and enqueue it.  [false] means the bounded queue
    would overflow and the frame was {e not} enqueued — the caller
    chooses between dropping (pushes) and evicting (responses). *)

val truncate_out : t -> int
(** Discard queued output in preparation for an eviction notice,
    preserving a partially-written head frame so the client's stream
    stays well-framed.  Returns the number of whole frames dropped. *)

val dropped_pushes : t -> int
(** Push frames dropped on this session because the queue was full. *)

val note_dropped_push : t -> unit
(** Count one dropped push. *)

val pending_out : t -> int
(** Outbound bytes not yet written to the socket. *)

val read : t -> [ `Data | `Eof ]
(** Pull whatever bytes the socket has into the frame decoder.  [`Eof]
    on orderly shutdown or a reset peer; [`Data] otherwise (including
    "nothing available right now"). *)

val next_frame : t -> [ `Frame of string | `Await | `Error of string ]
(** Next complete inbound payload ({!Frame.next} on the session's
    decoder; [`Error] is sticky and the daemon drops the connection). *)

val flush : t -> now:float -> [ `Idle | `Blocked | `Closed ]
(** Write as much pending output as the socket accepts.  [`Idle] means
    the queue is empty (blocked-since clock reset), [`Blocked] that
    bytes remain (clock running, anchored at [now]), [`Closed] that the
    peer is gone. *)

val close : t -> unit
(** Close the socket (idempotent; errors ignored). *)
