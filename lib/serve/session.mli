(** Per-connection state of the daemon: a non-blocking socket, an
    incremental {!Frame} decoder for the inbound byte stream, and an
    outbound buffer drained opportunistically by the [select] loop.

    Writes never block the daemon: responses and pushes are appended to
    the session buffer and flushed when the socket is writable.  A
    session that stays write-blocked past the daemon's client deadline
    is dropped — one slow subscriber must not stall the scheduler for
    everyone else. *)

type t
(** One client connection. *)

val create : ?max_frame:int -> id:int -> Unix.file_descr -> t
(** Wrap an accepted (already non-blocking) socket.  [max_frame] bounds
    inbound frame payloads (default {!Frame.default_max_frame}); [id] is
    a daemon-assigned label used in logs. *)

val fd : t -> Unix.file_descr
(** The underlying socket (for [select] sets). *)

val id : t -> int
(** The daemon-assigned connection id. *)

val subscribed : t -> bool
(** Whether this client receives push events. *)

val set_subscribed : t -> bool -> unit
(** Toggle push-event delivery. *)

val closing : t -> bool
(** Whether the session is flush-then-close: no further reads are
    served, pending output is still drained. *)

val close_after_flush : t -> unit
(** Mark the session closing (graceful: pending output survives). *)

val blocked_since : t -> float option
(** Wall-clock time the outbound buffer first failed to flush fully;
    [None] while writes keep up.  The daemon's slow-client deadline. *)

val send : t -> string -> unit
(** Frame a payload and append it to the outbound buffer. *)

val pending_out : t -> int
(** Outbound bytes not yet written to the socket. *)

val read : t -> [ `Data | `Eof ]
(** Pull whatever bytes the socket has into the frame decoder.  [`Eof]
    on orderly shutdown or a reset peer; [`Data] otherwise (including
    "nothing available right now"). *)

val next_frame : t -> [ `Frame of string | `Await | `Error of string ]
(** Next complete inbound payload ({!Frame.next} on the session's
    decoder; [`Error] is sticky and the daemon drops the connection). *)

val flush : t -> now:float -> [ `Idle | `Blocked | `Closed ]
(** Write as much pending output as the socket accepts.  [`Idle] means
    the buffer is empty (blocked-since clock reset), [`Blocked] that
    bytes remain (clock running, anchored at [now]), [`Closed] that the
    peer is gone. *)

val close : t -> unit
(** Close the socket (idempotent; errors ignored). *)
