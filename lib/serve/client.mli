(** Blocking client for the co-scheduling daemon.

    A thin synchronous wrapper over one connected socket: {!request}
    sends a verb and waits for its response (buffering any push events
    that arrive in between), while {!post}/{!receive} expose the
    pipelined layer directly — send many requests back-to-back, then
    read the responses in order — which is what the throughput bench
    uses.  All failures raise {!Error}; the daemon's structured
    [R_error] replies are returned, not raised, so callers distinguish
    transport failures from protocol-level refusals. *)

exception Error of string
(** Transport or protocol-framing failure (connect, short read, server
    sent garbage).  Never raised for a well-formed [R_error] reply. *)

type t
(** One blocking connection to a daemon. *)

val fresh_rid_base : unit -> int
(** A clock-and-pid-derived first request id (40-bit), so independent
    clients sharing a session id never collide on the backend's
    [(sid, rid)] dedup key.  Used by {!connect} for session-id
    connections and by {!Retry_client.create}; exposed for any other
    client construction that carries a [sid]. *)

val connect : ?sid:string -> ?retries:int -> ?delay:float -> string -> t
(** Connect to a Unix-domain socket path, retrying [retries] times
    (default 50) every [delay] seconds (default 0.1) while the socket
    does not exist yet or refuses — covers the daemon's start-up window.
    [sid] is stamped into every request as the session id, enabling the
    backend's retry dedup (see {!Retry_client} for a client that
    actually retries); each connection draws a fresh request-id base so
    that two invocations sharing a [sid] never collide on the backend's
    [(sid, rid)] dedup key — only a genuine retransmission of the same
    request id is deduplicated.
    @raise Error when the final attempt fails. *)

val connect_tcp : ?sid:string -> ?retries:int -> ?delay:float -> port:int -> unit -> t
(** Same, to the daemon's loopback TCP port. *)

val post : t -> ?at:float -> Protocol.verb -> int
(** Send one request without waiting; returns its request id.  [at]
    optionally advances the daemon's model clock.  Pipelining: responses
    come back in request order.  @raise Error on transport failure. *)

val receive : t -> Protocol.incoming
(** Block for the next frame from the daemon — a response or a push.
    @raise Error on transport failure or an undecodable frame. *)

val request : t -> ?at:float -> Protocol.verb -> Protocol.response
(** {!post} then block until {e this} request's response arrives.  Push
    events received meanwhile are buffered for {!pushes}/{!wait_push}.
    @raise Error on transport failure or a response-id mismatch. *)

val pushes : t -> Protocol.push list
(** Drain the buffered push events (oldest first) without blocking. *)

val wait_push : t -> Protocol.push
(** Return a buffered push, or block until one arrives.  @raise Error
    if a response frame arrives instead (no request is outstanding when
    this is called correctly). *)

val close : t -> unit
(** Close the connection (idempotent). *)
