(** Heuristic-seeded certification: the {!Sched} front end of
    {!Theory.Bnb}.

    {!Theory.Bnb} lives below this library (the dependency direction is
    [theory <- sched]), so it cannot run the Section 5 heuristics
    itself; this module closes the loop.  It runs the dominant-partition
    heuristics, hands their cached subsets to the branch-and-bound
    solver as incumbent seeds (the heuristic bound prunes from the first
    node), and reports each policy's makespan as a ratio to the
    certified optimum — the numbers behind the "Certified optimality
    gaps" table in EXPERIMENTS.md and the [cosched exact]
    subcommand. *)

type gap = {
  policy : Heuristics.t; (** The policy measured. *)
  makespan : float;      (** Its makespan on the instance. *)
  ratio : float;         (** [makespan] over the branch-and-bound optimum
                             (incumbent when budget-exhausted). *)
}
(** One row of a certified-gap report. *)

val default_policies : Heuristics.t list
(** The policies reported by default: DominantMinRatio,
    DominantRevMaxRatio, Fair and RandomPart — the Section 6.3 sweep
    minus the baselines that need no certification. *)

val seed_subsets :
  rng:Util.Rng.t -> platform:Model.Platform.t -> apps:Model.App.t array ->
  Theory.Dominant.subset list
(** The deduplicated cached subsets produced by the six
    dominant-partition heuristics on this instance — the incumbent seeds
    {!certify} hands to {!Theory.Bnb.solve}.  Randomness is consumed
    only by the [Random]-choice variants, as in {!Heuristics.run}. *)

val certify :
  ?order:Theory.Bnb.order ->
  ?budget:Theory.Bnb.budget ->
  ?pool:Exec.Pool.t ->
  ?split_depth:int ->
  ?max_n:int ->
  rng:Util.Rng.t ->
  platform:Model.Platform.t ->
  apps:Model.App.t array ->
  unit ->
  Theory.Bnb.result
(** {!Theory.Bnb.solve} seeded with {!seed_subsets}: the returned
    incumbent never exceeds any dominant heuristic's makespan (up to the
    equalisation bisection tolerance), whatever the budget. *)

val gaps :
  ?order:Theory.Bnb.order ->
  ?budget:Theory.Bnb.budget ->
  ?pool:Exec.Pool.t ->
  ?split_depth:int ->
  ?max_n:int ->
  ?policies:Heuristics.t list ->
  rng:Util.Rng.t ->
  platform:Model.Platform.t ->
  apps:Model.App.t array ->
  unit ->
  Theory.Bnb.result * gap list
(** Run every policy in [policies] (default {!default_policies}),
    certify the instance with their cached subsets (plus
    {!seed_subsets}) as seeds, and report each policy's makespan ratio
    to the optimum, in [policies] order.  On perfectly parallel
    instances a ratio of 1 (within the 1e-9 equalisation tolerance)
    means the heuristic is exactly optimal. *)
