(** Co-scheduling with generalised speedup profiles — the full version of
    the paper's future-work extension.

    Section 5 equalises completion times assuming Amdahl profiles.  Here
    each application carries an arbitrary {!Model.Speedup.t}; the common
    completion time [K] is found by bisection on the (monotone) total
    processor demand [sum_i procs_for(K)], where [procs_for] inverts each
    profile.  Two behaviours the Amdahl-only solver cannot express:

    - with [Comm] profiles (communication overhead), an application's
      time has a floor at its optimal processor count [p*]; the solver
      never assigns more than [p*], and the platform may legitimately be
      left with {e idle processors} when every application is at its
      floor;
    - the resulting [K] is exact for any mix of profiles on the same
      instance.

    Cache fractions are still chosen by the dominant-partition machinery
    (which only depends on [w], [f] and [d]); this module replaces the
    processor-assignment stage. *)

type app = {
  base : Model.App.t;
  profile : Model.Speedup.t;
}

val of_apps : Model.App.t array -> app array
(** Wrap with each application's own Amdahl profile. *)

type result = {
  procs : float array;     (** Assigned processors (possibly below the
                               platform total, see [idle]). *)
  x : float array;         (** The cache fractions used. *)
  times : float array;     (** Per-application completion times. *)
  makespan : float;
  idle : float;            (** Processors left unused (only with
                               non-monotone profiles). *)
}

val solve :
  platform:Model.Platform.t -> apps:app array -> x:float array -> result
(** Equalise completion times under the given cache fractions.  All
    applications reach the makespan exactly, except those pinned at their
    profile's floor, which may finish earlier.
    @raise Invalid_argument on an empty instance or length mismatch. *)

val solve_warm :
  ?warm:float -> ?iters:int ref -> ?ws:Workspace.t ->
  platform:Model.Platform.t -> apps:app array -> x:float array -> unit ->
  result
(** {!solve} with the warm-start plumbing of the online service: [warm]
    seeds the demand bisection with a previous makespan (same contract as
    {!Equalize.solve_makespan} — a tight bracket is grown around the seed,
    the root is unchanged); [iters], when given, is incremented once per
    demand-objective evaluation; [ws], when given, hosts the per-solve
    cost and floor intermediates in reusable buffers (bit-identical
    results, see {!Workspace}). *)

val solve_with_dominant :
  rng:Util.Rng.t -> platform:Model.Platform.t -> apps:app array -> result
(** The full heuristic: DominantMinRatio cache fractions (computed from
    the base applications), then {!solve}. *)
