(** Algorithms 1 and 2: greedy construction of dominant partitions.

    [Dominant] (Algorithm 1) starts from [IC = I] and evicts applications
    chosen by the choice function until the partition is dominant.
    [DominantRev] (Algorithm 2) starts from the empty set and accretes
    applications chosen by the choice function for as long as the
    partition stays dominant, returning the last dominant prefix. *)

type strategy = Dominant | DominantRev

val strategy_name : strategy -> string
(** ["Dominant"] or ["DominantRev"]. *)

val strategy_of_string : string -> strategy
(** Case-insensitive ("dominant", "dominantrev"/"dominant-rev").
    @raise Invalid_argument otherwise. *)

val build :
  ?ops:(int -> unit) ->
  strategy -> Choice.t -> rng:Util.Rng.t -> platform:Model.Platform.t ->
  apps:Model.App.t array -> Theory.Dominant.subset
(** Run the greedy algorithm; the result is always dominant (possibly the
    empty set, e.g. when even singletons violate dominance).  Consumes
    randomness from [rng] only for the [Random] criterion.

    [ops] (meaningful for [Dominant], Algorithm 1) is called with the
    per-application scan counts of every eviction-loop iteration — one
    [m]-wide pass each for the weight sum, the dominance check and the
    eviction choice over the [m] surviving members.  The online
    incremental solver counts its cold baseline through this hook, so
    the accounting is the real loop's, not a replica's. *)
