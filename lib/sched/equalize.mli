(** Processor assignment equalising completion times (Section 5) — the
    constructive side of Lemma 2.

    Lemma 1 says optimal schedules finish all applications together;
    Lemma 2, that given the cache split [x] the optimal processor counts
    are the ones achieving that.  Once the cache fractions [x_i] are
    fixed, this module gives every application the processor share that
    makes all of them finish at the same time [K].  With the Eq. (2)
    work cost [c_i = w_i (1 + f_i (ls + ll * miss_i))] the
    per-application time is [(s_i + (1 - s_i)/p_i) c_i = K], hence
    [p_i = (1 - s_i) / (K / c_i - s_i)], and [K] solves

    [sum_i (1 - s_i) / (K / c_i - s_i) = p.]

    The left-hand side decreases strictly in [K], so [K] is found by a
    binary search, bracketed between "everyone gets all [p] processors"
    and an upper bound grown from "everyone gets one processor" (the
    latter is insufficient when [n > p]). *)

val work_costs :
  platform:Model.Platform.t -> apps:Model.App.t array -> x:float array ->
  float array
(** The [c_i] values for the given cache fractions.
    @raise Invalid_argument on length mismatch. *)

val solve_makespan :
  ?tol:float -> ?warm:float -> ?iters:int ref -> ?ws:Workspace.t ->
  platform:Model.Platform.t -> apps:Model.App.t array ->
  float array -> float
(** The common completion time [K].  [tol] is the relative bisection
    tolerance (default 1e-13).

    [ws], when given, supplies the work-cost buffer from a reusable
    {!Workspace} instead of a fresh allocation; the root-finder itself
    is allocation-free (an all-float state record and the demand loop
    inlined), so with a workspace repeated solves allocate nothing per
    objective evaluation.  The result is bit-identical with and without
    [ws].

    [warm] is an optional previous makespan used as a bracket seed: the
    root is bisected inside a tight geometric bracket grown around it
    ({!Util.Solver.bisect_seeded}) instead of the cold bracket spanning
    from "everyone gets all [p] processors" to "everyone gets one" — the
    answer is the same root to within [tol], reached with fewer objective
    evaluations when the seed is close (the online service's incremental
    re-solve, see [Online.Incremental]).  A non-finite or infeasibly low
    seed falls back to the cold bracket.

    [iters], when given, is incremented once per evaluation of the
    processor-demand objective — the solver-iteration counter behind the
    warm-vs-cold accounting.

    @raise Invalid_argument on an empty instance. *)

val solve_with_costs :
  ?tol:float -> ?warm:float -> ?iters:int ref ->
  platform:Model.Platform.t -> apps:Model.App.t array ->
  costs:float array -> n:int -> unit -> float
(** The root-finder behind {!solve_makespan}, for callers that computed
    the work costs [c_i] themselves (the refinement loop evaluates them
    through a memoized {!Model.Kernel}; the micro-benchmarks isolate the
    bisection).  Reads [costs.(0 .. n-1)] — the buffer may be larger —
    and only the [s] field of each application.

    When the observability layer is armed ({!Obs.Probe.on}), each call
    additionally records the [equalize.*] metrics (solve count, objective
    evaluations, final relative bracket width, warm-seed drift); with
    probes off the instrumented wrapper is a single flag test and the
    result is bit-identical either way (QCheck-enforced).
    @raise Invalid_argument if [n = 0]. *)

val solve_cols :
  ?tol:float -> ?warm:float -> ?iters:int ref -> ?pool:Exec.Pool.t ->
  platform:Model.Platform.t -> s:float array ->
  costs:float array -> n:int -> unit -> float
(** Columnar variant of {!solve_with_costs} for the online service's
    flat-array hot path: the sequential fractions arrive as a
    position-indexed array [s.(0 .. n-1)] instead of [Model.App.t]
    values, and the final bracketed refinement uses Illinois false
    position (damped secant with a guaranteed bracket) instead of pure
    bisection — typically 6–10 objective evaluations to the same
    [hi - lo <= tol * (1 + |mid|)] stopping criterion where bisection
    needs ~40, which is what pushes the warm-vs-cold iteration speedup
    past the 1.5× gate in [BENCH_online.json].  The returned makespan
    agrees with {!solve_with_costs} to within the bracket-width
    tolerance (QCheck-checked); the bisection reference path itself is
    unchanged.  [iters] counts objective evaluations as in
    {!solve_makespan}.

    The demand sum inside each objective evaluation is chunked at a
    fixed width (2048 positions) whenever [n] exceeds one chunk, with
    per-chunk partials combined in ascending order — the association
    depends only on [n], never on [pool].  Passing a [pool] with
    workers runs the chunks in parallel ({!Exec.Pool.reduce_chunks});
    omitting it, or passing a sequential pool, runs the identical
    chunked sum in the calling domain, so the returned makespan is
    bit-identical across all pool configurations (QCheck-enforced).
    @raise Invalid_argument if [n = 0]. *)

val procs_at :
  platform:Model.Platform.t -> apps:Model.App.t array -> x:float array ->
  k:float -> float array
(** The processor shares [p_i(K)]; entries are [infinity] if [K] is below
    an application's parallel-time floor [s_i c_i]. *)

val schedule :
  ?tol:float -> platform:Model.Platform.t -> apps:Model.App.t array ->
  float array -> Model.Schedule.t
(** Solve for [K], derive the [p_i], and rescale them by a common factor
    so they sum to [p] exactly (the bisection residue is at the [tol]
    level, so completion times stay equal to within the same order). *)

val schedule_k :
  ?tol:float -> ?warm:float -> ?iters:int ref -> ?ws:Workspace.t ->
  platform:Model.Platform.t -> apps:Model.App.t array ->
  float array -> Model.Schedule.t * float
(** {!schedule} that also returns the solved makespan [K] — the warm seed
    for the next incremental re-solve — and accepts the
    [warm]/[iters]/[ws] plumbing of {!solve_makespan}.  With [ws] the
    cost and processor-share intermediates live in workspace buffers;
    only the returned schedule is allocated. *)
