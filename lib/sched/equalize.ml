let work_costs ~platform ~apps ~x =
  if Array.length apps <> Array.length x then
    invalid_arg "Equalize: apps and cache fractions must have the same length";
  Array.map2
    (fun app xi -> Model.Exec_model.work_cost ~app ~platform ~x:xi)
    apps x

(* --- allocation-free makespan root-finder ------------------------------- *)

(* Mutable bisection state.  All fields are floats, so the record is a
   flat float block: every store below writes unboxed, and one solve
   allocates exactly this block (plus the [eval] closure) up front —
   zero minor-heap words per objective evaluation, which is what the
   bench/micro harness asserts.  The logic replicates the generic
   [Util.Solver.bisect]/[bisect_seeded]/[expand_bracket_up] composition
   the solver used previously, with the processor-demand objective
   inlined and endpoint values carried instead of re-evaluated; the root
   is bit-identical (property-tested), only the evaluation count
   shrinks. *)
type state = {
  mutable k : float;    (* probe point *)
  mutable fk : float;   (* excess at [k] *)
  mutable lo : float;
  mutable flo : float;
  mutable hi : float;
  mutable acc : float;  (* demand accumulator / running max *)
}

(* Relative bracket width at the entry of the last bisection, written
   only when probes are on.  A one-slot float array stores unboxed (a
   [float ref] would box every store); a racy cross-domain write at
   worst attributes one solve's width to another in the histogram. *)
let last_bracket = [| Float.nan |]

(* Solve [sum_i (1-s_i)/(K/c_i - s_i) = p] for [K] given precomputed
   work costs.  [costs] may be a workspace buffer with capacity beyond
   [n]; only the first [n] entries are read. *)
let solve_with_costs_raw ?(tol = 1e-13) ?warm ?iters ~platform
    ~(apps : Model.App.t array) ~costs ~n () =
  if n = 0 then invalid_arg "Equalize.solve_makespan: empty instance";
  let p = platform.Model.Platform.p in
  let count = match iters with Some r -> r | None -> ref 0 in
  let st = { k = 0.; fk = 0.; lo = 0.; flo = 0.; hi = 0.; acc = 0. } in
  (* Excess processor demand at [st.k], into [st.fk]. *)
  let eval () =
    incr count;
    st.acc <- 0.;
    for i = 0 to n - 1 do
      let s = (Array.unsafe_get apps i).Model.App.s in
      let denom = (st.k /. Array.unsafe_get costs i) -. s in
      st.acc <- st.acc +. (if denom <= 0. then infinity else (1. -. s) /. denom)
    done;
    st.fk <- st.acc -. p;
    if Float.is_nan st.fk then
      raise (Util.Solver.Non_finite { fn = "equalize"; x = st.k })
  in
  (* [Util.Solver.bisect] on a bracket whose endpoint values are already
     known (and nonzero, of opposite signs). *)
  let bisect lo hi flo =
    if Obs.Probe.on () then
      last_bracket.(0) <- (hi -. lo) /. (0.5 *. (lo +. hi));
    st.lo <- lo;
    st.hi <- hi;
    st.flo <- flo;
    let it = ref 200 in
    let continue_ = ref true in
    while !continue_ do
      let mid = 0.5 *. (st.lo +. st.hi) in
      if st.hi -. st.lo <= tol *. (1.0 +. abs_float mid) || !it = 0 then begin
        st.k <- mid;
        continue_ := false
      end
      else begin
        st.k <- mid;
        eval ();
        if st.fk = 0.0 then continue_ := false (* st.k = mid already *)
        else begin
          if st.flo *. st.fk < 0.0 then st.hi <- mid
          else begin
            st.lo <- mid;
            st.flo <- st.fk
          end;
          decr it
        end
      end
    done;
    st.k
  in
  (* Lower bound: every application enjoys all p processors. *)
  st.acc <- neg_infinity;
  for i = 0 to n - 1 do
    let s = (Array.unsafe_get apps i).Model.App.s in
    let v = (s +. ((1. -. s) /. p)) *. Array.unsafe_get costs i in
    if v > st.acc then st.acc <- v
  done;
  let k_lo = st.acc in
  st.k <- k_lo;
  eval ();
  if st.fk <= 0. then k_lo
  else begin
    let f_klo = st.fk in
    match warm with
    | Some k0 when Float.is_finite k0 && k0 > k_lo ->
      (* A previous makespan brackets the new root tightly: the online
         service re-solves after small perturbations (one arrival, a
         little progress), so the root moved by a few percent at most.
         [Util.Solver.bisect_seeded] with grow = 1.25, floor = k_lo. *)
      st.k <- k0;
      eval ();
      let fseed = st.fk in
      if fseed = 0. then k0
      else if fseed > 0. then begin
        (* Root above the seed: grow an upper bracket geometrically. *)
        st.k <- k0 *. 1.25;
        eval ();
        let it = ref 128 in
        while st.fk > 0. && !it > 0 do
          st.k <- st.k *. 1.25;
          decr it;
          eval ()
        done;
        if st.fk > 0. then
          raise (Util.Solver.No_bracket "expand_bracket_up: no sign change");
        if st.fk = 0. then st.k else bisect k0 st.k fseed
      end
      else begin
        (* Root below the seed: shrink a lower bracket, never past the
           floor, where f(k_lo) > 0 is already known. *)
        st.lo <- Float.max k_lo (k0 /. 1.25);
        st.flo <- f_klo;
        let it = ref 128 in
        let searching = ref true in
        while !searching do
          if st.lo <= k_lo then begin
            st.lo <- k_lo;
            st.flo <- f_klo;
            searching := false
          end
          else begin
            st.k <- st.lo;
            eval ();
            if st.fk >= 0. then begin
              st.flo <- st.fk;
              searching := false
            end
            else if !it = 0 then begin
              st.lo <- k_lo;
              st.flo <- f_klo;
              searching := false
            end
            else begin
              decr it;
              st.lo <- Float.max k_lo (st.lo /. 1.25)
            end
          end
        done;
        if st.flo = 0. then st.lo else bisect st.lo k0 st.flo
      end
    | _ ->
      (* Cold: one processor each suffices when n <= p; otherwise grow
         the bracket ([Util.Solver.expand_bracket_up], grow = 2). *)
      st.acc <- neg_infinity;
      for i = 0 to n - 1 do
        let c = Array.unsafe_get costs i in
        if c > st.acc then st.acc <- c
      done;
      st.k <- (if st.acc > k_lo then st.acc else k_lo);
      eval ();
      let it = ref 128 in
      while st.fk > 0. && !it > 0 do
        st.k <- st.k *. 2.0;
        decr it;
        eval ()
      done;
      if st.fk > 0. then
        raise (Util.Solver.No_bracket "expand_bracket_up: no sign change");
      if st.fk = 0. then st.k else bisect k_lo st.k f_klo
  end

(* --- columnar variant: s/costs arrays, Illinois refinement -------------- *)

(* Same root, found faster: [solve_cols] serves the online service's
   columnar hot path, where the per-app inputs arrive as position-indexed
   float arrays (no [Model.App.t] per job) and the warm seed is usually a
   *predicted* makespan within a fraction of a percent of the root.  The
   bracket establishment (lower bound, seed grow/shrink, cold doubling)
   replicates [solve_with_costs_raw]; the final refinement uses the
   Illinois variant of false position — bracketed secant steps with
   stagnant-endpoint damping — which converges superlinearly on this
   smooth monotone objective (typically 6–10 evaluations to 1e-13
   relative, where bisection needs ~40) while keeping the guaranteed
   bracket of bisection.  Both solvers stop at the same
   [hi - lo <= tol * (1 + |mid|)] criterion, so the results agree to
   within the bracket width (QCheck-checked in test/test_perf.ml).  The
   reference path is untouched: its results stay bit-identical across
   releases. *)
(* Chunk width of the demand-sum association in [solve_cols].  Instances
   up to one chunk sum in a plain loop; larger ones always sum per-chunk
   partials in ascending chunk order — the same association whether the
   chunks run sequentially or across a pool, so sharding the evaluation
   is bit-identical to not sharding it. *)
let eval_chunk = 2048

let solve_cols ?(tol = 1e-13) ?warm ?iters ?pool ~platform ~(s : float array)
    ~(costs : float array) ~n () =
  if n = 0 then invalid_arg "Equalize.solve_cols: empty instance";
  let p = platform.Model.Platform.p in
  let count = match iters with Some r -> r | None -> ref 0 in
  let st = { k = 0.; fk = 0.; lo = 0.; flo = 0.; hi = 0.; acc = 0. } in
  let chunks = ((n - 1) / eval_chunk) + 1 in
  (* Excess-demand partial over positions [lo, hi) at the probe [st.k];
     workers read [st.k] after the dispatching barrier's lock, so the
     read is ordered after the coordinator's write. *)
  let part lo hi =
    let acc = ref 0. in
    for i = lo to hi - 1 do
      let si = Array.unsafe_get s i in
      let denom = (st.k /. Array.unsafe_get costs i) -. si in
      acc := !acc +. (if denom <= 0. then infinity else (1. -. si) /. denom)
    done;
    !acc
  in
  let eval () =
    incr count;
    st.acc <-
      (if chunks = 1 then part 0 n
       else
         match pool with
         | Some ep when Exec.Pool.size ep > 0 ->
           Exec.Pool.reduce_chunks ep ~chunks ~n part
         | _ ->
           let acc = ref 0. in
           for c = 0 to chunks - 1 do
             let lo, hi = Exec.Pool.chunk_bounds ~n ~chunks c in
             acc := !acc +. part lo hi
           done;
           !acc);
    st.fk <- st.acc -. p;
    if Float.is_nan st.fk then
      raise (Util.Solver.Non_finite { fn = "equalize"; x = st.k })
  in
  (* Illinois false position on a bracket with known endpoint values
     ([flo > 0 > fhi] — the demand excess decreases in k).  A secant
     step that leaves the open interval falls back to the midpoint, so
     progress is never worse than bisection. *)
  let illinois lo hi flo fhi =
    if Obs.Probe.on () then
      last_bracket.(0) <- (hi -. lo) /. (0.5 *. (lo +. hi));
    st.lo <- lo;
    st.hi <- hi;
    st.flo <- flo;
    let fhi = ref fhi in
    let side = ref 0 in
    let it = ref 200 in
    let continue_ = ref true in
    while !continue_ do
      let mid = 0.5 *. (st.lo +. st.hi) in
      if st.hi -. st.lo <= tol *. (1.0 +. abs_float mid) || !it = 0 then begin
        st.k <- mid;
        continue_ := false
      end
      else begin
        let x = st.hi -. (!fhi *. (st.hi -. st.lo) /. (!fhi -. st.flo)) in
        st.k <- (if x > st.lo && x < st.hi then x else mid);
        eval ();
        if st.fk = 0.0 then continue_ := false
        else begin
          if st.fk > 0.0 then begin
            st.lo <- st.k;
            st.flo <- st.fk;
            if !side = 1 then fhi := !fhi *. 0.5;
            side := 1
          end
          else begin
            st.hi <- st.k;
            fhi := st.fk;
            if !side = -1 then st.flo <- st.flo *. 0.5;
            side := -1
          end;
          decr it
        end
      end
    done;
    st.k
  in
  (* Lower bound: every application enjoys all p processors. *)
  st.acc <- neg_infinity;
  for i = 0 to n - 1 do
    let si = Array.unsafe_get s i in
    let v = (si +. ((1. -. si) /. p)) *. Array.unsafe_get costs i in
    if v > st.acc then st.acc <- v
  done;
  let k_lo = st.acc in
  st.k <- k_lo;
  eval ();
  if st.fk <= 0. then k_lo
  else begin
    let f_klo = st.fk in
    match warm with
    | Some k0 when Float.is_finite k0 && k0 > k_lo ->
      st.k <- k0;
      eval ();
      let fseed = st.fk in
      if fseed = 0. then k0
      else if fseed > 0. then begin
        (* Root above the seed: grow an upper bracket geometrically. *)
        st.k <- k0 *. 1.25;
        eval ();
        let it = ref 128 in
        while st.fk > 0. && !it > 0 do
          st.k <- st.k *. 1.25;
          decr it;
          eval ()
        done;
        if st.fk > 0. then
          raise (Util.Solver.No_bracket "expand_bracket_up: no sign change");
        if st.fk = 0. then st.k else illinois k0 st.k fseed st.fk
      end
      else begin
        (* Root below the seed: shrink a lower bracket, never past the
           floor, where f(k_lo) > 0 is already known. *)
        st.lo <- Float.max k_lo (k0 /. 1.25);
        st.flo <- f_klo;
        let it = ref 128 in
        let searching = ref true in
        while !searching do
          if st.lo <= k_lo then begin
            st.lo <- k_lo;
            st.flo <- f_klo;
            searching := false
          end
          else begin
            st.k <- st.lo;
            eval ();
            if st.fk >= 0. then begin
              st.flo <- st.fk;
              searching := false
            end
            else if !it = 0 then begin
              st.lo <- k_lo;
              st.flo <- f_klo;
              searching := false
            end
            else begin
              decr it;
              st.lo <- Float.max k_lo (st.lo /. 1.25)
            end
          end
        done;
        if st.flo = 0. then st.lo else illinois st.lo k0 st.flo fseed
      end
    | _ ->
      (* Cold: one processor each suffices when n <= p; otherwise grow
         the bracket. *)
      st.acc <- neg_infinity;
      for i = 0 to n - 1 do
        let c = Array.unsafe_get costs i in
        if c > st.acc then st.acc <- c
      done;
      st.k <- (if st.acc > k_lo then st.acc else k_lo);
      eval ();
      let it = ref 128 in
      while st.fk > 0. && !it > 0 do
        st.k <- st.k *. 2.0;
        decr it;
        eval ()
      done;
      if st.fk > 0. then
        raise (Util.Solver.No_bracket "expand_bracket_up: no sign change");
      if st.fk = 0. then st.k else illinois k_lo st.k f_klo st.fk
  end

(* Probe handles are registered eagerly at module load so the enabled
   path never pays a registry lookup. *)
let m_solves =
  Obs.Metrics.counter ~help:"makespan bisections solved" "equalize.solves"

let m_warm_seeded =
  Obs.Metrics.counter ~help:"solves seeded with a previous makespan"
    "equalize.warm_seeded"

let m_evals =
  Obs.Metrics.histogram ~help:"objective evaluations per solve"
    "equalize.evals"

let m_bracket =
  Obs.Metrics.histogram ~help:"relative bracket width at bisection entry"
    "equalize.bracket_width"

let m_drift =
  Obs.Metrics.histogram
    ~help:"relative distance from the warm seed to the solved makespan"
    "equalize.warm_drift"

(* Instrumentation wraps the solver per solve, never per evaluation:
   with probes off this is one flag test and a tail call into the
   allocation-free path above; with probes on the extra work (an
   evaluation counter read, a few metric updates) happens once per
   solve, so the bit-identical result and the zero-words-per-eval
   property hold in both states (test/test_obs.ml checks both). *)
let solve_with_costs ?tol ?warm ?iters ~platform ~apps ~costs ~n () =
  if not (Obs.Probe.on ()) then
    solve_with_costs_raw ?tol ?warm ?iters ~platform ~apps ~costs ~n ()
  else begin
    let counted = match iters with Some r -> r | None -> ref 0 in
    let e0 = !counted in
    last_bracket.(0) <- Float.nan;
    let k =
      solve_with_costs_raw ?tol ?warm ~iters:counted ~platform ~apps ~costs ~n
        ()
    in
    Obs.Metrics.incr m_solves;
    Obs.Metrics.observe m_evals (float_of_int (!counted - e0));
    let bw = last_bracket.(0) in
    if not (Float.is_nan bw) then Obs.Metrics.observe m_bracket bw;
    (match warm with
    | Some k0 when Float.is_finite k0 ->
      Obs.Metrics.incr m_warm_seeded;
      if k > 0. then Obs.Metrics.observe m_drift (Float.abs (k -. k0) /. k)
    | _ -> ());
    k
  end

let fill_costs ~platform ~apps ~x ~costs ~n =
  for i = 0 to n - 1 do
    costs.(i) <-
      Model.Exec_model.work_cost ~app:apps.(i) ~platform ~x:x.(i)
  done

let solve_makespan ?tol ?warm ?iters ?ws ~platform ~apps x =
  let n = Array.length apps in
  if n = 0 then invalid_arg "Equalize.solve_makespan: empty instance";
  if Array.length x <> n then
    invalid_arg "Equalize: apps and cache fractions must have the same length";
  let costs =
    match ws with Some w -> Workspace.costs w n | None -> Array.make n 0.
  in
  fill_costs ~platform ~apps ~x ~costs ~n;
  solve_with_costs ?tol ?warm ?iters ~platform ~apps ~costs ~n ()

let procs_at ~platform ~apps ~x ~k =
  let costs = work_costs ~platform ~apps ~x in
  Array.map2
    (fun (app : Model.App.t) c ->
      let denom = (k /. c) -. app.s in
      if denom <= 0. then infinity else (1. -. app.s) /. denom)
    apps costs

let schedule_k ?tol ?warm ?iters ?ws ~platform ~apps x =
  let n = Array.length apps in
  let k = solve_makespan ?tol ?warm ?iters ?ws ~platform ~apps x in
  let costs =
    (* [solve_makespan] left this exact buffer filled when a workspace
       was supplied; recompute only on the fresh-allocation path. *)
    match ws with
    | Some w -> Workspace.costs w n
    | None ->
      let c = Array.make n 0. in
      fill_costs ~platform ~apps ~x ~costs:c ~n;
      c
  in
  let procs =
    match ws with Some w -> Workspace.procs w n | None -> Array.make n 0.
  in
  for i = 0 to n - 1 do
    let app = apps.(i) in
    let denom = (k /. costs.(i)) -. app.Model.App.s in
    procs.(i) <-
      (if denom <= 0. then infinity else (1. -. app.Model.App.s) /. denom)
  done;
  let total = Util.Floatx.sum_array ~n procs in
  let factor = platform.Model.Platform.p /. total in
  let allocs =
    Array.init n (fun i ->
        { Model.Schedule.procs = procs.(i) *. factor; cache = x.(i) })
  in
  (Model.Schedule.make ~platform ~apps ~allocs, k)

let schedule ?tol ~platform ~apps x = fst (schedule_k ?tol ~platform ~apps x)
