let work_costs ~platform ~apps ~x =
  if Array.length apps <> Array.length x then
    invalid_arg "Equalize: apps and cache fractions must have the same length";
  Array.map2
    (fun app xi -> Model.Exec_model.work_cost ~app ~platform ~x:xi)
    apps x

let total_procs_at ~apps ~costs k =
  let acc = ref 0. in
  Array.iteri
    (fun i (app : Model.App.t) ->
      let denom = (k /. costs.(i)) -. app.s in
      acc := !acc +. (if denom <= 0. then infinity else (1. -. app.s) /. denom))
    apps;
  !acc

let solve_makespan ?(tol = 1e-13) ?warm ?iters ~platform ~apps x =
  if Array.length apps = 0 then invalid_arg "Equalize.solve_makespan: empty instance";
  let costs = work_costs ~platform ~apps ~x in
  let p = platform.Model.Platform.p in
  let excess k =
    (match iters with Some r -> incr r | None -> ());
    total_procs_at ~apps ~costs k -. p
  in
  (* Lower bound: every application enjoys all p processors. *)
  let k_lo =
    Array.fold_left Float.max neg_infinity
      (Array.map2
         (fun (app : Model.App.t) c -> (app.s +. ((1. -. app.s) /. p)) *. c)
         apps costs)
  in
  if excess k_lo <= 0. then k_lo
  else
    match warm with
    | Some k0 when Float.is_finite k0 && k0 > k_lo ->
      (* A previous makespan brackets the new root tightly: the online
         service re-solves after small perturbations (one arrival, a
         little progress), so the root moved by a few percent at most. *)
      Util.Solver.bisect_seeded ~tol ~f:excess ~floor:k_lo k0
    | _ ->
      (* Cold: one processor each suffices when n <= p; otherwise grow. *)
      let k_hi0 = Array.fold_left Float.max neg_infinity costs in
      let k_hi = Util.Solver.expand_bracket_up ~f:excess (Float.max k_hi0 k_lo) in
      Util.Solver.bisect ~tol ~f:excess k_lo k_hi

let procs_at ~platform ~apps ~x ~k =
  let costs = work_costs ~platform ~apps ~x in
  Array.map2
    (fun (app : Model.App.t) c ->
      let denom = (k /. c) -. app.s in
      if denom <= 0. then infinity else (1. -. app.s) /. denom)
    apps costs

let schedule_k ?tol ?warm ?iters ~platform ~apps x =
  let k = solve_makespan ?tol ?warm ?iters ~platform ~apps x in
  let procs = procs_at ~platform ~apps ~x ~k in
  let total = Util.Floatx.sum (Array.to_list procs) in
  let factor = platform.Model.Platform.p /. total in
  let allocs =
    Array.map2
      (fun p xi -> { Model.Schedule.procs = p *. factor; cache = xi })
      procs x
  in
  (Model.Schedule.make ~platform ~apps ~allocs, k)

let schedule ?tol ~platform ~apps x = fst (schedule_k ?tol ~platform ~apps x)
