type gap = { policy : Heuristics.t; makespan : float; ratio : float }

let default_policies =
  Heuristics.
    [
      dominant_min_ratio;
      DominantPartition (Partition_builder.DominantRev, Choice.MaxRatio);
      Fair;
      RandomPart;
    ]

let dedup subsets =
  List.fold_left
    (fun acc s -> if List.exists (fun t -> t = s) acc then acc else s :: acc)
    [] subsets
  |> List.rev

let seed_subsets ~rng ~platform ~apps =
  List.filter_map
    (fun policy -> (Heuristics.run ~rng ~platform ~apps policy).Heuristics.cached)
    Heuristics.dominant_heuristics
  |> dedup

let certify ?order ?budget ?pool ?split_depth ?max_n ~rng ~platform ~apps () =
  let seeds = seed_subsets ~rng ~platform ~apps in
  Theory.Bnb.solve ?order ?budget ?pool ?split_depth ?max_n ~seeds ~platform
    ~apps ()

let gaps ?order ?budget ?pool ?split_depth ?max_n
    ?(policies = default_policies) ~rng ~platform ~apps () =
  let runs = List.map (fun p -> Heuristics.run ~rng ~platform ~apps p) policies in
  let seeds =
    dedup
      (List.filter_map (fun (r : Heuristics.result) -> r.Heuristics.cached) runs
      @ seed_subsets ~rng ~platform ~apps)
  in
  let result =
    Theory.Bnb.solve ?order ?budget ?pool ?split_depth ?max_n ~seeds ~platform
      ~apps ()
  in
  let opt = result.Theory.Bnb.makespan in
  let gaps =
    List.map
      (fun (r : Heuristics.result) ->
        {
          policy = r.Heuristics.policy;
          makespan = r.Heuristics.makespan;
          ratio = (if opt > 0. then r.Heuristics.makespan /. opt else nan);
        })
      runs
  in
  (result, gaps)
