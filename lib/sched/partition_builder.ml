type strategy = Dominant | DominantRev

let strategy_name = function
  | Dominant -> "Dominant"
  | DominantRev -> "DominantRev"

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "dominant" -> Dominant
  | "dominantrev" | "dominant-rev" -> DominantRev
  | other -> invalid_arg ("Partition_builder: unknown strategy " ^ other)

(* Algorithm 1: evict from the full set until dominant.

   [ops], when given, receives the per-iteration scan counts — [m] for
   the weight-sum pass, [m] for the dominance check, [m] for the
   eviction scan over the [m] current members — so callers that compare
   algorithmic work against warm-started alternatives (the online
   incremental solver) account for exactly the loop this function runs
   rather than a hand-maintained replica that could drift. *)
let build_dominant ?ops choice ~rng ~platform ~apps =
  let n = Array.length apps in
  let subset = Array.make n true in
  let tick m = match ops with Some f -> f m | None -> () in
  let rec loop () =
    let members = Theory.Dominant.indices subset in
    let m = List.length members in
    if m = 0 then ()
    else begin
      tick m;
      (* weight sum *)
      tick m;
      (* dominance check *)
      if Theory.Dominant.is_dominant ~platform ~apps subset then ()
      else begin
        let k = Choice.pick choice ~rng ~platform ~apps members in
        tick m;
        (* eviction scan *)
        subset.(k) <- false;
        loop ()
      end
    end
  in
  loop ();
  subset

(* Algorithm 2: grow from a single application while dominance holds. *)
let build_dominant_rev choice ~rng ~platform ~apps =
  let n = Array.length apps in
  let accepted = Array.make n false in
  let trial = Array.make n false in
  let remaining = ref (List.init n (fun i -> i)) in
  let rec loop () =
    match !remaining with
    | [] -> ()
    | candidates ->
      let k = Choice.pick choice ~rng ~platform ~apps candidates in
      trial.(k) <- true;
      if Theory.Dominant.is_dominant ~platform ~apps trial then begin
        accepted.(k) <- true;
        remaining := List.filter (fun i -> i <> k) candidates;
        loop ()
      end
      (* First rejection stops the accretion, as in Algorithm 2. *)
  in
  loop ();
  accepted

let build ?ops strategy choice ~rng ~platform ~apps =
  match strategy with
  | Dominant -> build_dominant ?ops choice ~rng ~platform ~apps
  | DominantRev -> build_dominant_rev choice ~rng ~platform ~apps
