type app = {
  base : Model.App.t;
  profile : Model.Speedup.t;
}

let of_apps apps =
  Array.map (fun base -> { base; profile = Model.Speedup.of_app base }) apps

type result = {
  procs : float array;
  x : float array;
  times : float array;
  makespan : float;
  idle : float;
}

let solve_warm ?warm ?iters ?ws ~platform ~apps ~x () =
  let n = Array.length apps in
  if n = 0 then invalid_arg "General.solve: empty instance";
  if Array.length x <> n then invalid_arg "General.solve: length mismatch";
  let p = platform.Model.Platform.p in
  (* With a workspace the per-solve intermediates reuse its buffers
     (floors borrows the gradient slot); results are bit-identical. *)
  let costs =
    match ws with Some w -> Workspace.costs w n | None -> Array.make n 0.
  in
  for i = 0 to n - 1 do
    costs.(i) <-
      Model.Exec_model.work_cost ~app:apps.(i).base ~platform ~x:x.(i)
  done;
  (* The smallest conceivable K: every application at its profile's best
     processor count. *)
  let floors =
    match ws with Some w -> Workspace.gradient w n | None -> Array.make n 0.
  in
  for i = 0 to n - 1 do
    floors.(i) <- costs.(i) *. Model.Speedup.min_factor apps.(i).profile ~cap:p
  done;
  let k_floor = ref neg_infinity in
  for i = 0 to n - 1 do
    k_floor := Float.max !k_floor floors.(i)
  done;
  let k_floor = !k_floor in
  let demand k =
    (* Total processors needed to finish everything by K; applications
       whose floor exceeds K make it infinite (K infeasible). *)
    (match iters with Some r -> incr r | None -> ());
    let acc = ref 0. in
    for i = 0 to n - 1 do
      match
        Model.Speedup.procs_for_factor apps.(i).profile ~cap:p
          ~target:(k /. costs.(i))
      with
      | Some pi -> acc := !acc +. pi
      | None -> acc := infinity
    done;
    !acc
  in
  let excess k = demand k -. p in
  let k =
    if excess k_floor <= 0. then k_floor
    else
      match warm with
      | Some k0 when Float.is_finite k0 && k0 > k_floor ->
        Util.Solver.bisect_seeded ~tol:1e-13 ~f:excess ~floor:k_floor k0
      | _ ->
        (* demand is nonincreasing in K; grow an upper bound and bisect. *)
        let c_max = ref neg_infinity in
        for i = 0 to n - 1 do
          c_max := Float.max !c_max costs.(i)
        done;
        let hi =
          Util.Solver.expand_bracket_up ~f:excess (Float.max k_floor !c_max)
        in
        Util.Solver.bisect ~tol:1e-13 ~f:excess k_floor hi
  in
  let procs =
    Array.mapi
      (fun i { profile; _ } ->
        match
          Model.Speedup.procs_for_factor profile ~cap:p ~target:(k /. costs.(i))
        with
        | Some pi -> pi
        | None ->
          (* Numerically K may sit a hair under a floor; pin to best. *)
          Model.Speedup.best_procs profile ~cap:p)
      apps
  in
  (* If capacity remains, scaling monotone-profile apps up would only
     unbalance finish times; leave the surplus idle (meaningful only for
     Comm floors anyway). *)
  let used = Util.Floatx.sum_array procs in
  let times =
    Array.init n (fun i ->
        Model.Speedup.time apps.(i).profile ~w:1. ~cost:costs.(i) ~p:procs.(i))
  in
  let makespan = Array.fold_left Float.max neg_infinity times in
  { procs; x; times; makespan; idle = Float.max 0. (p -. used) }

let solve ~platform ~apps ~x = solve_warm ~platform ~apps ~x ()

let solve_with_dominant ~rng ~platform ~apps =
  let bases = Array.map (fun a -> a.base) apps in
  let subset =
    Partition_builder.build Partition_builder.Dominant Choice.MinRatio ~rng
      ~platform ~apps:bases
  in
  let x = Theory.Dominant.cache_allocation_capped ~platform ~apps:bases subset in
  solve ~platform ~apps ~x
