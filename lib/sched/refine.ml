type result = {
  x : float array;
  makespan : float;
  iterations : int;
  improvement : float;
}

(* dc_i/dx_i in the unsaturated power-law regime; 0 when the cache
   fraction is below the Eq. (3) threshold (rate pinned at 1) or zero. *)
let cost_derivative ~(platform : Model.Platform.t) (app : Model.App.t) x =
  let d = Model.Power_law.d_of ~app ~platform in
  let alpha = platform.alpha in
  if x <= 0. then 0.
  else if d /. (x ** alpha) >= 1. then 0.
  else -.(alpha *. app.w *. app.f *. platform.ll *. d *. (x ** (-.alpha -. 1.)))

let gradient ~platform ~apps ~x ~k =
  let n = Array.length apps in
  let costs = Equalize.work_costs ~platform ~apps ~x in
  (* dK/dx_i = - (dg/dx_i) / (dg/dK) for g(K,x) = sum p_j(K, c_j) - p. *)
  let dg_dk = ref 0. in
  for j = 0 to n - 1 do
    let app = apps.(j) in
    let denom = (k /. costs.(j)) -. app.Model.App.s in
    dg_dk := !dg_dk -. ((1. -. app.Model.App.s) /. (denom *. denom) /. costs.(j))
  done;
  Array.mapi
    (fun i (app : Model.App.t) ->
      if x.(i) <= 0. then 0.
      else
        let c = costs.(i) in
        let c' = cost_derivative ~platform app x.(i) in
        let denom = (k /. c) -. app.s in
        let dg_dxi = (1. -. app.s) *. k *. c' /. (c *. c *. denom *. denom) in
        -.(dg_dxi /. !dg_dk))
    apps

(* --- optimized fixed point --------------------------------------------- *)

let m_refines =
  Obs.Metrics.counter ~help:"gradient refinements run" "refine.calls"

let m_refine_iters =
  Obs.Metrics.histogram ~help:"fixed-point iterations per refinement"
    "refine.iters"

let m_improve =
  Obs.Metrics.histogram
    ~help:"relative makespan improvement over the starting point"
    "refine.improvement"

let m_step =
  Obs.Metrics.histogram
    ~help:"relative makespan decrease per accepted fixed-point step"
    "refine.step_gain"

(* The multiplicative-weights loop of {!refine_reference} with the hot
   path overhauled: work costs and derivatives evaluate through a
   precomputed {!Model.Kernel} (one memoized power per application per
   point instead of several fresh [( ** )]), the makespan of the current
   iterate is carried from the previous iteration instead of re-solved
   (the reference solved every point twice: once as a proposal, once as
   the loop head), and the proposal/gradient/cost intermediates live in
   a {!Workspace}.  The trajectory is the reference's up to rounding —
   the kernel factorisation changes a few ulps per cost — so results
   agree to the fixed point's own tolerance, not bit-for-bit. *)
let refine ?(max_iter = 200) ?(tol = 1e-10) ?iters ?ws ~platform ~apps ~x0 () =
  let n = Array.length apps in
  if n = 0 then invalid_arg "Refine.refine: empty instance";
  if Array.length x0 <> n then invalid_arg "Refine.refine: length mismatch";
  let ws = match ws with Some w -> w | None -> Workspace.create ~n () in
  let kern = Model.Kernel.create ~platform apps in
  let costs = Workspace.costs ws n in
  let grads = Workspace.gradient ws n in
  let proposal = Workspace.proposal ws n in
  let fill_costs x =
    for i = 0 to n - 1 do
      costs.(i) <- Model.Kernel.work_cost kern i x.(i)
    done
  in
  let evaluate x =
    fill_costs x;
    Equalize.solve_with_costs ?iters ~platform ~apps ~costs ~n ()
  in
  let grad_into ~x ~k =
    (* [costs] holds the work costs at [x]. *)
    let dg_dk = ref 0. in
    for j = 0 to n - 1 do
      let s = Model.Kernel.seq_fraction kern j in
      let denom = (k /. costs.(j)) -. s in
      dg_dk := !dg_dk -. ((1. -. s) /. (denom *. denom) /. costs.(j))
    done;
    for i = 0 to n - 1 do
      if x.(i) <= 0. then grads.(i) <- 0.
      else begin
        let s = Model.Kernel.seq_fraction kern i in
        let c = costs.(i) in
        let c' = Model.Kernel.cost_derivative kern i x.(i) in
        let denom = (k /. c) -. s in
        let dg_dxi = (1. -. s) *. k *. c' /. (c *. c *. denom *. denom) in
        grads.(i) <- -.(dg_dxi /. !dg_dk)
      end
    done
  in
  (* [Span.start] is a null handle when probes are off; an exception
     below leaves the span open for [Obs.Span.stop_all] to close. *)
  let sp = Obs.Span.start "sched.refine" in
  let k0 = evaluate x0 in
  let x = Array.copy x0 in
  let best_x = Array.copy x0 in
  let best_k = ref k0 in
  let k_cur = ref k0 in
  (* [costs] corresponds to the current [x] except right after an
     overshoot reset, when it still holds the rejected proposal's. *)
  let costs_valid = ref true in
  let gamma = ref 0.5 in
  let iterations = ref 0 in
  (try
     for _ = 1 to max_iter do
       incr iterations;
       let k = !k_cur in
       if not !costs_valid then fill_costs x;
       costs_valid := true;
       grad_into ~x ~k;
       (* Multiplicative-weights step towards equal gradients; a dead
          gradient (saturated or unsupported app) zeroes the fraction so
          the mass goes where it helps. *)
       let total = ref 0. in
       for i = 0 to n - 1 do
         let xi = x.(i) in
         let g = -.grads.(i) in
         let v = if xi <= 0. || g <= 0. then 0. else xi *. (g ** !gamma) in
         proposal.(i) <- v;
         total := !total +. v
       done;
       if !total <= 0. then raise Exit;
       (* Normalise, enforce the Eq. (3) support rule — a fraction at or
          below the useful threshold is wasted — and renormalise once. *)
       let total2 = ref 0. in
       for i = 0 to n - 1 do
         let v = proposal.(i) /. !total in
         let v = if v > 0. && v <= Model.Kernel.min_useful kern i then 0. else v in
         proposal.(i) <- v;
         total2 := !total2 +. v
       done;
       if !total2 <= 0. then raise Exit;
       for i = 0 to n - 1 do
         proposal.(i) <- proposal.(i) /. !total2
       done;
       let k' = evaluate proposal in
       if k' < !best_k then begin
         best_k := k';
         Array.blit proposal 0 best_x 0 n
       end;
       if k' <= k then begin
         if Obs.Probe.on () && k > 0. then
           Obs.Metrics.observe m_step ((k -. k') /. k);
         Array.blit proposal 0 x 0 n;
         k_cur := k';
         if (k -. k') /. k < tol then raise Exit
       end
       else begin
         (* Overshot: shrink the step and retry from the best point. *)
         gamma := !gamma /. 2.;
         Array.blit best_x 0 x 0 n;
         k_cur := !best_k;
         costs_valid := false;
         if !gamma < 1e-4 then raise Exit
       end
     done
   with Exit -> ());
  let improvement = Float.max 0. (1. -. (!best_k /. k0)) in
  if Obs.Probe.on () then begin
    Obs.Metrics.incr m_refines;
    Obs.Metrics.observe m_refine_iters (float_of_int !iterations);
    Obs.Metrics.observe m_improve improvement;
    Obs.Span.add_attr sp "iterations" (string_of_int !iterations);
    Obs.Span.add_attr sp "k0" (Printf.sprintf "%.6g" k0);
    Obs.Span.add_attr sp "makespan" (Printf.sprintf "%.6g" !best_k);
    Obs.Span.stop sp
  end;
  { x = best_x; makespan = !best_k; iterations = !iterations; improvement }

(* --- naive reference ---------------------------------------------------- *)

(* The pre-overhaul implementation, kept verbatim as the measured
   baseline: every iteration re-solves the current point (whose makespan
   the loop already knows) and re-derives every power-law constant from
   scratch.  bench/micro reports the optimized/reference throughput
   ratio from the same run. *)
let refine_reference ?(max_iter = 200) ?(tol = 1e-10) ~platform ~apps ~x0 () =
  let n = Array.length apps in
  if n = 0 then invalid_arg "Refine.refine: empty instance";
  if Array.length x0 <> n then invalid_arg "Refine.refine: length mismatch";
  let thresholds =
    Array.map
      (fun app -> Model.Power_law.min_useful_fraction ~app ~platform)
      apps
  in
  let evaluate x = Equalize.solve_makespan ~platform ~apps x in
  let k0 = evaluate x0 in
  let best_x = ref (Array.copy x0) in
  let best_k = ref k0 in
  let x = ref (Array.copy x0) in
  let gamma = ref 0.5 in
  let iterations = ref 0 in
  (try
     for _ = 1 to max_iter do
       incr iterations;
       let k = evaluate !x in
       let grads = gradient ~platform ~apps ~x:!x ~k in
       let proposal =
         Array.mapi
           (fun i xi ->
             let g = -.grads.(i) in
             if xi <= 0. || g <= 0. then 0. else xi *. (g ** !gamma))
           !x
       in
       let total = Array.fold_left ( +. ) 0. proposal in
       if total <= 0. then raise Exit;
       let proposal = Array.map (fun v -> v /. total) proposal in
       Array.iteri
         (fun i v -> if v > 0. && v <= thresholds.(i) then proposal.(i) <- 0.)
         proposal;
       let total = Array.fold_left ( +. ) 0. proposal in
       if total <= 0. then raise Exit;
       let proposal = Array.map (fun v -> v /. total) proposal in
       let k' = evaluate proposal in
       if k' < !best_k then begin
         best_k := k';
         best_x := Array.copy proposal
       end;
       if k' <= k then begin
         if (k -. k') /. k < tol then begin
           x := proposal;
           raise Exit
         end;
         x := proposal
       end
       else begin
         gamma := !gamma /. 2.;
         x := Array.copy !best_x;
         if !gamma < 1e-4 then raise Exit
       end
     done
   with Exit -> ());
  {
    x = !best_x;
    makespan = !best_k;
    iterations = !iterations;
    improvement = Float.max 0. (1. -. (!best_k /. k0));
  }

let schedule ?max_iter ?tol ~platform ~apps ~x0 () =
  let { x; _ } = refine ?max_iter ?tol ~platform ~apps ~x0 () in
  Equalize.schedule ~platform ~apps x
