(** Preallocated scratch buffers for the solver hot path.

    {!Equalize.solve_makespan}, {!Equalize.schedule_k},
    {!General.solve_warm} and {!Refine.refine} accept an optional
    workspace; with one, their per-solve intermediate arrays come from
    these buffers instead of fresh allocations, and repeated solves (a
    sweep, the online service's event loop) run allocation-free in the
    steady state.  Results are bit-identical with and without a
    workspace — the buffers change where the numbers live, never what
    they are (property-tested).

    Buffers are handed out by capacity: an accessor grows its buffer to
    at least [n] (amortised doubling) and returns it; contents beyond
    the caller's writes are unspecified and every solve overwrites them.
    A workspace must not be shared across domains. *)

type t

val create : ?n:int -> unit -> t
(** A workspace with initial capacity [n] (default 0; buffers grow on
    demand). *)

val costs : t -> int -> float array
(** The work-cost buffer, grown to capacity [>= n]. *)

val procs : t -> int -> float array
(** The processor-share buffer, grown to capacity [>= n]. *)

val gradient : t -> int -> float array
(** The gradient buffer (also the floors buffer of
    {!General.solve_warm}), grown to capacity [>= n]. *)

val proposal : t -> int -> float array
(** The refinement-proposal buffer, grown to capacity [>= n]. *)
