(* Reusable solver scratch space.

   The equalisation and refinement loops are called hundreds of times per
   figure point and once per event by the online service; historically
   every call allocated fresh [costs]/[procs]/gradient/proposal arrays.
   A workspace owns growable float buffers that are handed out by
   capacity: accessors guarantee [capacity >= n] and return the same
   array on every call, so a solve reuses the buffers of the previous
   one and the steady state allocates nothing.

   Buffers hold garbage beyond the requested [n] and are overwritten by
   every solve; never let one escape a solver call.  A workspace is
   single-threaded by construction — give each domain its own. *)

type t = {
  mutable costs : float array;
  mutable procs : float array;
  mutable gradient : float array;
  mutable proposal : float array;
}

let create ?(n = 0) () =
  {
    costs = Array.make n 0.;
    procs = Array.make n 0.;
    gradient = Array.make n 0.;
    proposal = Array.make n 0.;
  }

let grow a n =
  if Array.length a >= n then a
  else Array.make (max n ((2 * Array.length a) + 8)) 0.

let costs t n =
  let a = grow t.costs n in
  t.costs <- a;
  a

let procs t n =
  let a = grow t.procs n in
  t.procs <- a;
  a

let gradient t n =
  let a = grow t.gradient n in
  t.gradient <- a;
  a

let proposal t n =
  let a = grow t.proposal n in
  t.proposal <- a;
  a
