(** Speedup-aware cache refinement — the paper's future-work direction.

    Section 5's heuristics allocate cache {e as if} applications were
    perfectly parallel (Theorem 3's closed form), then fix processors by
    equalising completion times.  The conclusion names the obvious next
    step: "extending the heuristics that account for the speedup profile
    for both processor and cache allocation".  This module implements it.

    For Amdahl applications, the equalised makespan [K(x)] is defined
    implicitly by [sum_i (1 - s_i) / (K / c_i(x_i) - s_i) = p] with
    [c_i(x) = w_i (1 + f_i (ls + ll d_i x^{-alpha}))].  Implicit
    differentiation gives the exact gradient [dK/dx_i], and at an interior
    optimum of the simplex all partial derivatives are equal (KKT).  The
    refinement runs a multiplicative-weights fixed point on that
    condition: [x_i <- x_i * (-dK/dx_i)^gamma], renormalised, with a
    backtracking step size and the Eq. (3) support rule ([x_i] must exceed
    [d_i^{1/alpha}] or drop to 0).  The result never degrades the starting
    point (the best iterate is returned).

    For perfectly parallel applications the fixed point coincides with
    Theorem 3 (tested); for large sequential fractions it strictly
    improves on it (the [speedup] experiment quantifies the gap). *)

type result = {
  x : float array;        (** Refined cache fractions (sum <= 1). *)
  makespan : float;       (** Equalised makespan at [x]. *)
  iterations : int;       (** Fixed-point iterations performed. *)
  improvement : float;    (** [1 - makespan / makespan(x0)], >= 0. *)
}

val refine :
  ?max_iter:int -> ?tol:float -> ?iters:int ref -> ?ws:Workspace.t ->
  platform:Model.Platform.t ->
  apps:Model.App.t array -> x0:float array -> unit -> result
(** Refine a starting allocation (typically Theorem 3's).  [max_iter]
    defaults to 200, [tol] (relative makespan change) to 1e-10.

    The fixed point runs on the overhauled hot path: costs and
    derivatives evaluate through a precomputed memoized
    {!Model.Kernel}, the current iterate's makespan is carried forward
    instead of re-solved at the top of every iteration (one full
    {!Equalize.solve_makespan} saved per iteration versus
    {!refine_reference}), and intermediates live in [ws] when given.
    [iters], as in {!Equalize.solve_makespan}, counts every
    processor-demand evaluation across all inner solves, so refinement
    work is observable like the online solvers'.

    With {!Obs.Probe.on}, each call opens a [sched.refine] tracing span
    and records the [refine.*] metrics (fixed-point iterations, relative
    improvement, per-step gain); {!refine_reference} stays deliberately
    uninstrumented, as it is the measured baseline.
    @raise Invalid_argument on an empty instance or length mismatch. *)

val refine_reference :
  ?max_iter:int -> ?tol:float -> platform:Model.Platform.t ->
  apps:Model.App.t array -> x0:float array -> unit -> result
(** The pre-overhaul implementation, kept verbatim as the measured naive
    baseline (bench/micro reports {!refine}'s throughput against it in
    the same run).  Same fixed point up to floating-point rounding: the
    kernel factorisation used by {!refine} differs by ulps per cost, so
    the two trajectories agree to the fixed point's tolerance, not
    bit-for-bit. *)

val schedule :
  ?max_iter:int -> ?tol:float -> platform:Model.Platform.t ->
  apps:Model.App.t array -> x0:float array -> unit -> Model.Schedule.t
(** The refined allocation equalised into a full schedule. *)

val cost_derivative :
  platform:Model.Platform.t -> Model.App.t -> float -> float
(** [dc_i/dx_i] in the unsaturated power-law regime; 0 at or below zero
    cache and when the miss rate is pinned at 1.  The direct evaluation
    {!Model.Kernel.cost_derivative} is property-tested against.  Exposed
    for tests. *)

val gradient :
  platform:Model.Platform.t -> apps:Model.App.t array -> x:float array ->
  k:float -> float array
(** The exact partials [dK/dx_i] (nonpositive; more cache never hurts) at
    the equalised makespan [k]; 0 for applications outside the support or
    saturated at miss rate 1.  Exposed for tests. *)
