(** NAS Parallel Benchmark application profiles (Tables 1 and 2).

    The paper instruments the NPB suite (CLASS=A, 16 cores) with PEBIL to
    obtain operation counts [w], access frequencies [f] and miss rates for
    a 40 MB cache.  Those measured constants are embedded here verbatim;
    the [Cachesim] library regenerates equivalently shaped profiles from
    synthetic traces (see DESIGN.md, substitution table). *)

type row = {
  name : string;
  description : string;  (** Table 1's one-line summary. *)
  w : float;             (** Computing operations. *)
  f : float;             (** Data accesses per operation. *)
  m_40mb : float;        (** Miss rate measured with a 40 MB cache. *)
}

val cg : row
(** Conjugate gradient (Table 2, row CG). *)

val bt : row
(** Block tri-diagonal solver (Table 2, row BT). *)

val lu : row
(** Lower-upper Gauss–Seidel solver (Table 2, row LU). *)

val sp : row
(** Scalar penta-diagonal solver (Table 2, row SP). *)

val mg : row
(** Multi-grid on meshes (Table 2, row MG). *)

val ft : row
(** Discrete 3D FFT (Table 2, row FT). *)

val all : row list
(** The six rows of Table 2, in the paper's order: CG, BT, LU, SP, MG, FT. *)

val baseline_cache : float
(** 40 MB, the cache size at which [m_40mb] was measured. *)

val to_app : ?s:float -> ?footprint:float -> row -> App.t
(** Convert a measured row to a model application.  [s] defaults to [0.]
    (perfectly parallel); [footprint] to [infinity]. *)

val find : string -> row
(** Case-insensitive lookup by name.  @raise Not_found. *)
