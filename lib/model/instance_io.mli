(** Reading and writing problem instances as CSV.

    A released scheduler needs a way to feed it real measurements.  The
    format is one header line followed by one line per application:

    {v
    name,w,s,f,m0,c0,footprint
    CG,5.70e10,0.05,0.535,6.59e-4,4e7,inf
    v}

    [c0] and [footprint] may be omitted (trailing columns), defaulting to
    40 MB and infinity; [footprint] accepts "inf".  Blank lines, lines
    starting with '#', and header lines (first cell "name") are ignored;
    CRLF line endings, a leading UTF-8 BOM, and whitespace around any
    cell are tolerated (files exported from spreadsheets parse as-is).
    Parsing is strict about everything else: malformed numbers or
    out-of-range parameters raise {!Parse_error} with the 1-based line
    number and the offending cell text. *)

exception Parse_error of int * string
(** (1-based line number, message). *)

val header : string
(** ["name,w,s,f,m0,c0,footprint"]. *)

val to_csv : App.t array -> string
(** Serialise; round-trips through {!of_csv}. *)

val of_csv : string -> App.t array
(** Parse a CSV document.  @raise Parse_error on malformed input. *)

val save : string -> App.t array -> unit
(** Write to a file path. *)

val load : string -> App.t array
(** Read from a file path.  @raise Parse_error on malformed content and
    [Sys_error] on I/O failure. *)
