(** Applications, as modelled in Section 3 of the paper.

    An application [T_i] is characterised by its operation count [w_i], its
    Amdahl sequential fraction [s_i], its data-access frequency [f_i]
    (accesses per operation), its memory footprint [a_i], and a miss rate
    [m0_i] measured for a baseline cache of size [c0_i] (40 MB for the NPB
    measurements of Table 2). *)

type t = private {
  name : string;
  w : float;          (** Number of computing operations, [w_i > 0]. *)
  s : float;          (** Sequential fraction, [0 <= s_i < 1]. *)
  f : float;          (** Data accesses per operation, [f_i >= 0]. *)
  footprint : float;  (** Memory footprint [a_i] in bytes; [infinity] means
                          "larger than any cache", the Section 4/5 regime. *)
  m0 : float;         (** Miss rate at the baseline cache size, in [0, 1]. *)
  c0 : float;         (** Baseline cache size (bytes) for [m0], [> 0]. *)
}

val make :
  ?name:string -> ?s:float -> ?footprint:float -> ?c0:float ->
  w:float -> f:float -> m0:float -> unit -> t
(** Smart constructor; validates every field.
    Defaults: [name = "app"], [s = 0.] (perfectly parallel),
    [footprint = infinity], [c0 = 40e6] (the paper's 40 MB baseline).
    @raise Invalid_argument when a parameter is out of range. *)

val with_s : t -> float -> t
(** Copy with a different sequential fraction (used by the sequential-part
    sweeps of Figures 6, 13, 14). *)

val with_w : t -> float -> t
(** Copy with a different work amount. *)

val with_m0 : t -> float -> t
(** Copy with a different baseline miss rate (miss-rate sweeps, Figs 2/18). *)

val with_name : t -> string -> t
(** Copy with a different display name. *)

val perfectly_parallel : t -> bool
(** [s = 0]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print every field (name, [w], [s], [f], footprint, [m0], [c0]). *)

val to_string : t -> string
(** [pp] rendered to a string. *)
