(* Per-application power-law kernels, precomputed once per instance.

   Every solver evaluation funnels through [work_cost] (and, in the
   refinement loop, [cost_derivative]); computed naively each call pays
   one or two [( ** )] per application: [d_i = m0 (c0/cs)^alpha] is
   re-derived from scratch and the miss rate needs [x^{-alpha}].  Here
   [d_i], the Eq. (3) support threshold [d_i^{1/alpha}] and the useful
   cap [min 1 (footprint/cs)] are computed once at [create], and the
   last [x^{-alpha}] is memoized per application — a cost evaluation
   followed by a derivative at the same point (the refinement's access
   pattern) pays for the power once.

   Entries are all-float records, so the memo updates store unboxed and
   the kernel allocates nothing after [create].  Results agree with the
   direct {!Exec_model} / {!Power_law} evaluations to a few ulps (the
   factorisation [m0 (c0/c)^alpha = d_i x^{-alpha}] is exact in real
   arithmetic, not in floats); the QCheck equivalence properties pin the
   relative error below 1e-12. *)

type entry = {
  w : float;
  f : float;
  s : float;
  d : float;            (* Power_law.d_of: miss rate at the full LLC *)
  cap : float;          (* Power_law.max_useful_fraction *)
  min_useful : float;   (* Power_law.min_useful_fraction: d^{1/alpha} *)
  mutable memo_x : float;
  mutable memo_pow : float;  (* memo_x ** (-alpha) *)
}

type t = {
  alpha : float;
  ls : float;
  ll : float;
  p : float;
  entries : entry array;
}

let create ~(platform : Platform.t) apps =
  let entries =
    Array.map
      (fun (app : App.t) ->
        let d = Power_law.d_of ~app ~platform in
        {
          w = app.w;
          f = app.f;
          s = app.s;
          d;
          cap = Power_law.max_useful_fraction ~app ~platform;
          min_useful = d ** (1. /. platform.alpha);
          memo_x = Float.nan;
          memo_pow = Float.nan;
        })
      apps
  in
  { alpha = platform.alpha; ls = platform.ls; ll = platform.ll;
    p = platform.p; entries }

let length t = Array.length t.entries
let d t i = t.entries.(i).d
let min_useful t i = t.entries.(i).min_useful
let max_useful t i = t.entries.(i).cap
let seq_fraction t i = t.entries.(i).s

let miss_ratio t i x =
  let e = Array.unsafe_get t.entries i in
  if e.d = 0. then 0.
  else begin
    let xe = if x < e.cap then x else e.cap in
    let pw =
      if xe = e.memo_x then e.memo_pow
      else begin
        let p = xe ** -.t.alpha in
        e.memo_x <- xe;
        e.memo_pow <- p;
        p
      end
    in
    let m = e.d *. pw in
    if m > 1. then 1. else m
  end

let work_cost t i x =
  let e = Array.unsafe_get t.entries i in
  let miss =
    if e.d = 0. then 0.
    else begin
      let xe = if x < e.cap then x else e.cap in
      let pw =
        if xe = e.memo_x then e.memo_pow
        else begin
          let p = xe ** -.t.alpha in
          e.memo_x <- xe;
          e.memo_pow <- p;
          p
        end
      in
      let m = e.d *. pw in
      if m > 1. then 1. else m
    end
  in
  e.w *. (1. +. (e.f *. (t.ls +. (t.ll *. miss))))

let cost_derivative t i x =
  let e = Array.unsafe_get t.entries i in
  if x <= 0. || e.d = 0. then 0.
  else begin
    let pw =
      if x = e.memo_x then e.memo_pow
      else begin
        let p = x ** -.t.alpha in
        e.memo_x <- x;
        e.memo_pow <- p;
        p
      end
    in
    (* Saturated at miss rate 1 (below the Eq. (3) threshold): flat. *)
    if e.d *. pw >= 1. then 0.
    else -.(t.alpha *. e.w *. e.f *. t.ll *. e.d *. (pw /. x))
  end
