(** Execution platforms (Section 3).

    A platform is [p] homogeneous processors sharing a partitionable cache
    of size [cs] with latency [ls], backed by an infinite memory with
    latency [ll]; [alpha] is the power-law sensitivity factor used to
    rescale miss rates to fractions of [cs].  Processors are rational: the
    paper shares cores across applications through multi-threading. *)

type t = private {
  p : float;      (** Total processors, [> 0]. *)
  cs : float;     (** Shared cache (LLC) size in bytes, [> 0]. *)
  ls : float;     (** Cache (small-storage) latency, [>= 0]. *)
  ll : float;     (** Memory (large-storage) latency, [>= ls]. *)
  alpha : float;  (** Power-law exponent, conventionally in [0.3, 0.7]. *)
}

val make :
  ?ls:float -> ?ll:float -> ?alpha:float -> p:float -> cs:float -> unit -> t
(** Defaults are the paper's simulation settings: [ls = 0.17], [ll = 1.],
    [alpha = 0.5].  @raise Invalid_argument on out-of-range parameters. *)

val paper_default : t
(** The Section 6 platform: 256 processors, 32 GB shared LLC, [ls = 0.17],
    [ll = 1], [alpha = 0.5] (one Sunway TaihuLight node). *)

val small_llc : t
(** The Figure 2/18 variant: same but with a 1 GB LLC. *)

val with_p : t -> float -> t
(** Copy with a different processor count (Figure 4/5 sweeps).
    Validates like {!make}. *)

val with_cs : t -> float -> t
(** Copy with a different cache size (Figure 2 sweep). *)

val with_ls : t -> float -> t
(** Copy with a different cache latency (Figure 8/15 sweeps). *)

val with_alpha : t -> float -> t
(** Copy with a different power-law exponent (Figure 3/19 sweeps). *)

val pp : Format.formatter -> t -> unit
(** Pretty-print every field. *)
