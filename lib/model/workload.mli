(** Workload generators for the Section 6 / Appendix A data sets.

    Three data sets are used in the paper's evaluation:
    - [NPB-6]: exactly the six measured NPB applications;
    - [NPB-SYNTH]: synthetic applications built from Table 2, with the work
      [w_i] redrawn uniformly in [1e8, 1e12];
    - [RANDOM]: fully synthetic, [w] in [1e8, 1e12], [f] in [0.1, 0.9], and
      the 40 MB miss rate in [9e-4, 1e-2].

    Unless overridden, the sequential fraction [s_i] is drawn uniformly in
    [0.01, 0.15] (the paper: "taken randomly between 1% and 15%"). *)

type dataset = Npb6 | NpbSynth | Random

val dataset_name : dataset -> string
(** The paper's spelling: ["NPB-6"], ["NPB-SYNTH"], ["RANDOM"]. *)

val dataset_of_string : string -> dataset
(** Case-insensitive; accepts "npb6"/"npb-6", "npb-synth"/"npbsynth"/"synth",
    "random".  @raise Invalid_argument otherwise. *)

val default_s_range : float * float
(** [(0.01, 0.15)]. *)

val default_w_range : float * float
(** [(1e8, 1e12)]. *)

val generate :
  ?s_range:float * float ->
  ?fixed_s:float ->
  ?fixed_m0:float ->
  ?footprint:float ->
  rng:Util.Rng.t -> dataset -> int -> App.t array
(** [generate ~rng ds n] draws [n] applications from data set [ds].

    - [Npb6] cycles through the six NPB rows (so [n <= 6] gives distinct
      applications; the paper always uses [n = 6]);
    - [NpbSynth] picks a uniformly random base row per application and
      redraws its work in {!default_w_range};
    - [Random] draws all of work, frequency and miss rate uniformly in the
      paper's ranges.

    [fixed_s] overrides the sequential fraction for every application
    (sequential-part sweeps, Figs 6/13/14, and the perfectly-parallel
    theory); otherwise [s] is drawn in [s_range] (default
    {!default_s_range}).  [fixed_m0] overrides the 40 MB miss rate
    (miss-rate sweeps, Figs 2/18).  [footprint] defaults to [infinity].
    @raise Invalid_argument if [n < 0]. *)

val random_f_range : float * float
(** [(0.1, 0.9)]: the RANDOM data set's frequency range. *)

val random_m_range : float * float
(** [(9e-4, 1e-2)]: the RANDOM data set's 40 MB miss-rate range. *)
