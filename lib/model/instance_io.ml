exception Parse_error of int * string

let header = "name,w,s,f,m0,c0,footprint"

let float_field v = if Float.is_finite v then Printf.sprintf "%.17g" v else "inf"

let to_csv apps =
  let row (app : App.t) =
    String.concat ","
      [
        app.name;
        float_field app.w;
        float_field app.s;
        float_field app.f;
        float_field app.m0;
        float_field app.c0;
        float_field app.footprint;
      ]
  in
  String.concat "\n" (header :: Array.to_list (Array.map row apps)) ^ "\n"

let parse_float ~line ~what s =
  let s = String.trim s in
  if String.lowercase_ascii s = "inf" || s = "+inf" || s = "infinity" then
    infinity
  else
    match float_of_string_opt s with
    | Some v -> v
    | None ->
      raise (Parse_error (line, Printf.sprintf "bad %s value %S" what s))

let parse_row ~line row =
  (* Cells are individually trimmed, so CRLF line endings and stray
     spaces/tabs around any value (" 0.05 ", "inf\r") parse cleanly. *)
  match List.map String.trim (String.split_on_char ',' row) with
  | name :: w :: s :: f :: m0 :: rest ->
    let c0, footprint =
      match rest with
      | [] -> (40e6, infinity)
      | [ c0 ] -> (parse_float ~line ~what:"c0" c0, infinity)
      | [ c0; fp ] ->
        (parse_float ~line ~what:"c0" c0, parse_float ~line ~what:"footprint" fp)
      | extra :: _ ->
        raise
          (Parse_error
             (line,
              Printf.sprintf "too many columns (first extra cell %S) in row %S"
                extra row))
    in
    (try
       App.make ~name ~footprint ~c0
         ~s:(parse_float ~line ~what:"s" s)
         ~w:(parse_float ~line ~what:"w" w)
         ~f:(parse_float ~line ~what:"f" f)
         ~m0:(parse_float ~line ~what:"m0" m0)
         ()
     with Invalid_argument msg ->
       raise (Parse_error (line, Printf.sprintf "%s (row %S)" msg row)))
  | _ ->
    raise
      (Parse_error
         (line,
          Printf.sprintf "expected at least 5 comma-separated columns in row %S"
            row))

let strip_bom s =
  if String.length s >= 3 && String.sub s 0 3 = "\xEF\xBB\xBF" then
    String.sub s 3 (String.length s - 3)
  else s

let of_csv text =
  let lines = String.split_on_char '\n' (strip_bom text) in
  let apps = ref [] in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      (* [String.trim] also removes '\r', so CRLF files parse as-is. *)
      let trimmed = String.trim raw in
      if trimmed = "" || trimmed.[0] = '#' then ()
      else if
        String.length trimmed >= 5
        && String.lowercase_ascii (String.sub trimmed 0 5) = "name,"
      then () (* header line, full or truncated *)
      else apps := parse_row ~line trimmed :: !apps)
    lines;
  Array.of_list (List.rev !apps)

let save path apps =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv apps))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_csv (really_input_string ic (in_channel_length ic)))
