(** Schedules: per-application processor and cache assignments.

    A schedule pairs every application with an allocation
    [(p_i, x_i)] of rational processors and a cache fraction; the
    CoSchedCache constraints are [sum p_i <= p] and [sum x_i <= 1]
    (Definition 1). *)

type alloc = { procs : float; cache : float }

type t = {
  platform : Platform.t;
  apps : App.t array;
  allocs : alloc array;
}

val make : platform:Platform.t -> apps:App.t array -> allocs:alloc array -> t
(** @raise Invalid_argument if the arrays have different lengths. *)

type violation =
  | Negative_procs of int
  | Zero_procs of int          (** An application with no processor never finishes. *)
  | Negative_cache of int
  | Cache_fraction_above_one of int
  | Procs_oversubscribed of float   (** [sum p_i] exceeding the platform. *)
  | Cache_oversubscribed of float   (** [sum x_i] exceeding 1. *)

val violations : ?eps:float -> t -> violation list
(** All constraint violations, with a relative tolerance [eps]
    (default {!Util.Floatx.default_eps}) on the two sum constraints. *)

val is_valid : ?eps:float -> t -> bool
(** No violations. *)

val pp_violation : Format.formatter -> violation -> unit
(** Human-readable rendering of one violation. *)

val exe_times : t -> float array
(** Per-application completion times [Exe_i(p_i, x_i)] (all applications
    start at time 0). *)

val makespan : t -> float
(** [max_i Exe_i(p_i, x_i)]; [0] for an empty schedule. *)

val total_procs : t -> float
(** [sum p_i] over all applications. *)

val total_cache : t -> float
(** [sum x_i] over all applications. *)

val equal_finish : ?eps:float -> t -> bool
(** Whether all completion times coincide up to tolerance — Lemma 1's
    property of optimal schedules (default [eps = 1e-6], looser than the
    validity tolerance because finish times come from a binary search). *)

val scale_procs_to_capacity : t -> t
(** Rescale all [p_i] by a common factor so that [sum p_i = p] exactly;
    identity for an empty schedule or all-zero processors. *)

val pp : Format.formatter -> t -> unit
(** One line per application: allocation and completion time. *)
