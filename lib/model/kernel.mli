(** Precomputed, memoized power-law kernels for the solver hot path.

    A solver run evaluates [work_cost] for every application at every
    candidate allocation, and the refinement loop additionally needs the
    derivative at the same point.  Evaluated through {!Exec_model} and
    {!Power_law} each call re-derives [d_i = m0 (c0/cs)^alpha] and pays a
    fresh [( ** )]; this module precomputes the per-application constants
    once and memoizes the last [x^{-alpha}] per application, so a
    cost-plus-derivative evaluation at one point costs a single power.

    Values agree with the direct evaluations to a few ulps; the QCheck
    equivalence properties bound the relative error by 1e-12.  The
    structure allocates nothing after {!create} (entries are all-float
    records, so memo updates store unboxed). *)

type t

val create : platform:Platform.t -> App.t array -> t
(** Precompute [d_i], the support threshold [d_i^{1/alpha}] and the
    useful-fraction cap for every application. *)

val length : t -> int

val d : t -> int -> float
(** [Power_law.d_of], bit-identical (computed once at {!create}). *)

val min_useful : t -> int -> float
(** [Power_law.min_useful_fraction], bit-identical. *)

val max_useful : t -> int -> float
(** [Power_law.max_useful_fraction], bit-identical. *)

val seq_fraction : t -> int -> float
(** The application's Amdahl sequential fraction [s]. *)

val miss_ratio : t -> int -> float -> float
(** [miss_ratio t i x]: {!Exec_model.miss_ratio} up to rounding. *)

val work_cost : t -> int -> float -> float
(** [work_cost t i x]: {!Exec_model.work_cost} up to rounding. *)

val cost_derivative : t -> int -> float -> float
(** [dc_i/dx] in the unsaturated power-law regime, 0 at or below the
    Eq. (3) threshold — the refinement's gradient kernel.  Reuses the
    memoized [x^{-alpha}] from a preceding [work_cost] at the same
    point. *)
