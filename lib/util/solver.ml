exception No_bracket of string
exception Non_finite of { fn : string; x : float }

let () =
  Printexc.register_printer (function
    | Non_finite { fn; x } ->
      Some (Printf.sprintf "Util.Solver.Non_finite: %s: f(%.17g) is NaN" fn x)
    | _ -> None)

let nan_guard ~fn x fx =
  if Float.is_nan fx then raise (Non_finite { fn; x }) else fx

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f lo hi =
  if hi < lo then invalid_arg "Solver.bisect: hi < lo";
  let f_checked x = nan_guard ~fn:"bisect" x (f x) in
  let flo = f_checked lo and fhi = f_checked hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else if flo *. fhi > 0.0 then
    raise (No_bracket (Printf.sprintf "bisect: f(%g)=%g and f(%g)=%g" lo flo hi fhi))
  else
    let rec loop lo hi flo iter =
      let mid = 0.5 *. (lo +. hi) in
      if hi -. lo <= tol *. (1.0 +. abs_float mid) || iter = 0 then mid
      else
        let fmid = f_checked mid in
        if fmid = 0.0 then mid
        else if flo *. fmid < 0.0 then loop lo mid flo (iter - 1)
        else loop mid hi fmid (iter - 1)
    in
    loop lo hi flo max_iter

let bisect_decreasing ?(tol = 1e-12) ?(max_iter = 200) ~f ~target lo hi =
  if hi < lo then invalid_arg "Solver.bisect_decreasing: hi < lo";
  let f_checked x = nan_guard ~fn:"bisect_decreasing" x (f x) in
  if f_checked lo < target then lo
  else if f_checked hi > target then hi
  else bisect ~tol ~max_iter ~f:(fun x -> f x -. target) lo hi

let expand_bracket_up ?(grow = 2.0) ?(max_iter = 128) ~f hi0 =
  let rec loop hi iter =
    if nan_guard ~fn:"expand_bracket_up" hi (f hi) <= 0.0 then hi
    else if iter = 0 then raise (No_bracket "expand_bracket_up: no sign change")
    else loop (hi *. grow) (iter - 1)
  in
  loop hi0 max_iter

let bisect_seeded ?(tol = 1e-12) ?(grow = 1.25) ?(max_iter = 200) ~f ~floor
    seed =
  if not (grow > 1.0) then invalid_arg "Solver.bisect_seeded: grow <= 1";
  if not (seed > floor) then invalid_arg "Solver.bisect_seeded: seed <= floor";
  let f_checked x = nan_guard ~fn:"bisect_seeded" x (f x) in
  let fseed = f_checked seed in
  if fseed = 0.0 then seed
  else if fseed > 0.0 then
    (* Root above the seed: grow an upper bracket geometrically. *)
    let hi = expand_bracket_up ~grow ~f (seed *. grow) in
    bisect ~tol ~max_iter ~f seed hi
  else
    (* Root below the seed: shrink a lower bracket, never past the floor
       (where the caller guarantees [f >= 0]). *)
    let rec down lo iter =
      if lo <= floor then floor
      else if f_checked lo >= 0.0 then lo
      else if iter = 0 then floor
      else down (Float.max floor (lo /. grow)) (iter - 1)
    in
    let lo = down (Float.max floor (seed /. grow)) 128 in
    bisect ~tol ~max_iter ~f lo seed

let newton ?(tol = 1e-12) ?(max_iter = 100) ?bracket ~f ~df x0 =
  (* With a known bracket, a stalled iteration degrades to bisection —
     unconditionally convergent — instead of giving up. *)
  let fallback reason =
    match bracket with
    | Some (lo, hi) -> bisect ~tol ~f lo hi
    | None -> raise (No_bracket reason)
  in
  let rec loop x iter =
    let fx = f x in
    if Float.is_nan fx then (
      match bracket with
      | Some (lo, hi) -> bisect ~tol ~f lo hi
      | None -> raise (Non_finite { fn = "newton"; x }))
    else if abs_float fx <= tol then x
    else if iter = 0 then fallback "newton: did not converge"
    else
      let d = df x in
      if d = 0.0 || Float.is_nan d then fallback "newton: zero derivative"
      else
        let x' = x -. (fx /. d) in
        if Float.is_nan x' then fallback "newton: diverged"
        else loop x' (iter - 1)
  in
  loop x0 max_iter

let golden_section_min ?(tol = 1e-10) ?(max_iter = 200) ~f lo hi =
  if hi < lo then invalid_arg "Solver.golden_section_min: hi < lo";
  let gr = (sqrt 5.0 -. 1.0) /. 2.0 in
  (* Invariant: a < c < d < b with c, d at the golden sections of [a, b]. *)
  let rec loop a b c d fc fd iter =
    if b -. a <= tol *. (1.0 +. abs_float a) || iter = 0 then 0.5 *. (a +. b)
    else if fc < fd then
      let b = d and d = c and fd = fc in
      let c = b -. (gr *. (b -. a)) in
      loop a b c d (f c) fd (iter - 1)
    else
      let a = c and c = d and fc = fd in
      let d = a +. (gr *. (b -. a)) in
      loop a b c d fc (f d) (iter - 1)
  in
  let c = hi -. (gr *. (hi -. lo)) in
  let d = lo +. (gr *. (hi -. lo)) in
  loop lo hi c d (f c) (f d) max_iter
