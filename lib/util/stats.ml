let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array")

let mean a =
  check_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  check_nonempty "Stats.variance" a;
  let n = Array.length a in
  if n = 1 then 0.0
  else
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    ss /. float_of_int (n - 1)

let stddev a = sqrt (variance a)

let geomean a =
  check_nonempty "Stats.geomean" a;
  Array.iter
    (fun x -> if not (x > 0.) then invalid_arg "Stats.geomean: nonpositive entry")
    a;
  exp (Array.fold_left (fun acc x -> acc +. log x) 0.0 a /. float_of_int (Array.length a))

let min_max a =
  check_nonempty "Stats.min_max" a;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0)) a

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  check_nonempty "Stats.median" a;
  let b = sorted_copy a in
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

module Quantile = struct
  let check_q name q =
    if Float.is_nan q || q < 0. || q > 1. then
      invalid_arg (name ^ ": q must be in [0, 1]")

  let rank ~count ~q =
    if count <= 0 then invalid_arg "Stats.Quantile.rank: count must be positive";
    check_q "Stats.Quantile.rank" q;
    Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int count)))

  let nearest_sorted b q =
    check_nonempty "Stats.Quantile.nearest_sorted" b;
    b.(rank ~count:(Array.length b) ~q - 1)

  let interpolated_sorted b q =
    check_nonempty "Stats.Quantile.interpolated_sorted" b;
    check_q "Stats.Quantile.interpolated_sorted" q;
    let n = Array.length b in
    let r = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor r) and hi = int_of_float (ceil r) in
    if lo = hi then b.(lo)
    else
      let frac = r -. float_of_int lo in
      b.(lo) +. (frac *. (b.(hi) -. b.(lo)))
end

let percentile a q =
  check_nonempty "Stats.percentile" a;
  if q < 0. || q > 100. then invalid_arg "Stats.percentile: q outside [0,100]";
  Quantile.interpolated_sorted (sorted_copy a) (q /. 100.0)

let confidence_interval_95 a =
  let m = mean a in
  let n = Array.length a in
  if n = 1 then (m, m)
  else
    let half = 1.96 *. stddev a /. sqrt (float_of_int n) in
    (m -. half, m +. half)

module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable lo : float;
    mutable hi : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)

  let min t =
    if t.n = 0 then invalid_arg "Stats.Online.min: empty accumulator" else t.lo

  let max t =
    if t.n = 0 then invalid_arg "Stats.Online.max: empty accumulator" else t.hi

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      { n; mean; m2; lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
end
