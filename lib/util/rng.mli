(** Deterministic pseudo-random number generation.

    All stochastic components of the library (workload generators, the
    [Random] choice function of the heuristics, trace generators, experiment
    repetitions) draw from this module so that every experiment is exactly
    reproducible from a seed.  The core generator is SplitMix64, which has a
    64-bit state, passes BigCrush, and supports cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Two generators
    built from the same seed produce identical streams. *)

val copy : t -> t
(** Independent copy sharing no mutable state with the original. *)

val state : t -> int64
(** The current 64-bit state word.  Two generators with equal states
    produce identical streams, so the state is a faithful content key for
    memoization (see [Campaign.Digest]). *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Used to give
    each experiment repetition its own substream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound).  [bound] must be positive. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform on [lo, hi).  @raise Invalid_argument if
    [hi < lo]. *)

val log_uniform : t -> float -> float -> float
(** [log_uniform t lo hi] draws [exp u] with [u] uniform on
    [log lo, log hi); both bounds must be positive.  Suitable for parameters
    spanning several orders of magnitude (e.g. work between 1e8 and 1e12). *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp(rate); [rate > 0]. *)

val normal : t -> float -> float -> float
(** [normal t mu sigma] draws from N(mu, sigma^2) by Box–Muller. *)

val zipf : t -> int -> float -> int
(** [zipf t n s] draws a rank in [1, n] with probability proportional to
    [1/rank^s], by inversion on the cumulative weights.  [n >= 1], [s >= 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.  @raise Invalid_argument on []. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [0, n), in random order.  @raise Invalid_argument if [k > n] or [k < 0]. *)
