(** One-dimensional root finding and optimisation.

    The co-scheduling heuristics equalise completion times by solving
    [sum_i (1 - s_i) / (K / c_i - s_i) = p] for the makespan [K]
    (Section 5 of the paper); the left-hand side is strictly decreasing in
    [K], so bisection on a bracketing interval converges unconditionally. *)

exception No_bracket of string
(** Raised when the supplied interval does not bracket a root. *)

exception Non_finite of { fn : string; x : float }
(** Raised when the objective returns NaN at abscissa [x] inside solver
    [fn].  A NaN would otherwise poison every sign test and let the
    iteration "converge" to garbage silently; the structured payload
    names the solver and the offending point instead. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [bisect ~f lo hi] finds [x] in [lo, hi] with [f x = 0], assuming
    [f lo] and [f hi] have opposite signs (either may be zero).
    [tol] (default [1e-12], relative to interval width) controls the
    termination width; [max_iter] defaults to 200.
    @raise No_bracket if [f lo] and [f hi] have the same strict sign.
    @raise Non_finite if [f] returns NaN at any evaluated point.
    @raise Invalid_argument if [hi < lo]. *)

val bisect_decreasing :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> target:float ->
  float -> float -> float
(** [bisect_decreasing ~f ~target lo hi] solves [f x = target] for a
    (weakly) decreasing [f].  If [f lo < target] returns [lo]; if
    [f hi > target] returns [hi] (the monotone clamp used when a sweep
    leaves the bracket). *)

val expand_bracket_up :
  ?grow:float -> ?max_iter:int -> f:(float -> float) -> float -> float
(** [expand_bracket_up ~f hi0] returns some [hi >= hi0] with [f hi <= 0],
    multiplying by [grow] (default 2) until the sign flips.
    @raise No_bracket after [max_iter] (default 128) doublings. *)

val bisect_seeded :
  ?tol:float -> ?grow:float -> ?max_iter:int -> f:(float -> float) ->
  floor:float -> float -> float
(** [bisect_seeded ~f ~floor seed] finds the root of a (weakly) decreasing
    [f] known to lie in [[floor, infinity)], starting from a warm guess
    [seed > floor] with [f floor >= 0] (the caller's invariant).  A tight
    bracket is grown geometrically around the seed (factor [grow], default
    1.25) and bisected; when the seed is near the root this takes far
    fewer objective evaluations than bisecting a cold bracket spanning the
    whole feasible range — the warm-start primitive of the online
    re-solvers (see [Online.Incremental]).
    @raise Invalid_argument if [seed <= floor] or [grow <= 1].
    @raise No_bracket if [f] never becomes nonpositive above the seed.
    @raise Non_finite if [f] returns NaN at any evaluated point. *)

val newton :
  ?tol:float -> ?max_iter:int -> ?bracket:float * float ->
  f:(float -> float) -> df:(float -> float) -> float -> float
(** Newton–Raphson from an initial guess.  When the iteration stalls — a
    vanishing or NaN derivative, a NaN step, or [max_iter] exhausted
    without meeting [tol] (default 1e-12) on [|f x|] — it falls back to
    {!bisect} on [bracket] if one is known, and only raises ([No_bracket],
    or [Non_finite] when [f] itself returned NaN) without one. *)

val golden_section_min :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** Golden-section minimisation of a unimodal [f] on [lo, hi]; returns the
    abscissa of the minimum. *)
