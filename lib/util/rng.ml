type t = { mutable state : int64 }

(* SplitMix64 constants (Steele, Lea & Flood, OOPSLA 2014). *)
let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let state t = t.state

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  (* A fresh SplitMix64 seeded from a mixed output of the parent; the extra
     mixing step decorrelates the child stream from subsequent parent
     outputs. *)
  let s = bits64 t in
  { state = mix64 (Int64.add s 0x9E3779B97F4A7C15L) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.(sub (sub r v) (sub bound64 1L)) < 0L then draw ()
    else Int64.to_int v
  in
  draw ()

let float t bound =
  if not (bound > 0.) then invalid_arg "Rng.float: bound must be positive";
  (* 53 random bits mapped to [0,1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r /. 9007199254740992.0 *. bound

let unit_float t = float t 1.0

let uniform t lo hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  lo +. (unit_float t *. (hi -. lo))

let log_uniform t lo hi =
  if not (lo > 0. && hi > 0.) then
    invalid_arg "Rng.log_uniform: bounds must be positive";
  if hi < lo then invalid_arg "Rng.log_uniform: hi < lo";
  exp (uniform t (log lo) (log hi))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t rate =
  if not (rate > 0.) then invalid_arg "Rng.exponential: rate must be positive";
  -.log (1.0 -. unit_float t) /. rate

let normal t mu sigma =
  let u1 = 1.0 -. unit_float t and u2 = unit_float t in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let zipf t n s =
  if n < 1 then invalid_arg "Rng.zipf: n must be >= 1";
  if s < 0. then invalid_arg "Rng.zipf: s must be >= 0";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let target = unit_float t *. total in
  let rec find i acc =
    if i = n - 1 then n
    else
      let acc = acc +. weights.(i) in
      if acc >= target then i + 1 else find (i + 1) acc
  in
  find 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  Array.to_list (Array.sub a 0 k)
