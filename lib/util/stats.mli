(** Descriptive statistics used by the experiment harness.

    The harness repeats every simulation over many seeds and reports means
    with min/max envelopes (the paper's error-bar plots) and confidence
    intervals.  [Online] implements Welford's numerically stable streaming
    accumulator; the array functions are one-shot conveniences. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons.
    @raise Invalid_argument on an empty array. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val geomean : float array -> float
(** Geometric mean; all entries must be positive. *)

val min_max : float array -> float * float
(** Smallest and largest entries.  @raise Invalid_argument on empty. *)

val median : float array -> float
(** Median (average of middle pair for even sizes).  Does not mutate the
    input.  @raise Invalid_argument on empty. *)

module Quantile : sig
  val rank : count:int -> q:float -> int
  (** Ceil-based nearest rank (1-based): [max 1 (ceil (q * count))] for
      [q] in [0, 1].  The single rank rule shared by {!percentile}'s
      callers and [Obs.Metrics] histogram quantiles, so exact-array and
      histogram quantiles cannot drift apart.
      @raise Invalid_argument if [count <= 0] or [q] outside [0, 1]. *)

  val nearest_sorted : float array -> float -> float
  (** [nearest_sorted b q] is the element of the {e sorted} array [b] at
      {!rank} — the exact-array reference for histogram quantiles.
      Does not validate sortedness.
      @raise Invalid_argument on an empty array or bad [q]. *)

  val interpolated_sorted : float array -> float -> float
  (** [interpolated_sorted b q] linearly interpolates between the two
      closest ranks of the {e sorted} array [b], [q] in [0, 1] — the
      kernel behind {!percentile}.
      @raise Invalid_argument on an empty array or bad [q]. *)
end
(** Shared quantile kernels: every quantile in the repo (experiment
    percentiles, bench summaries, [Obs.Metrics] histograms) routes
    through this submodule. *)

val percentile : float array -> float -> float
(** [percentile a q] with [q] in [0, 100], linear interpolation between
    closest ranks ({!Quantile.interpolated_sorted} after sorting a
    copy).  Does not mutate the input. *)

val confidence_interval_95 : float array -> float * float
(** [(lo, hi)] of the normal-approximation 95% confidence interval on the
    mean.  Degenerates to [(mean, mean)] for singletons. *)

module Online : sig
  type t
  (** Streaming mean/variance/min/max accumulator (Welford). *)

  val create : unit -> t
  (** Empty accumulator. *)

  val add : t -> float -> unit
  (** Feed one observation. *)

  val count : t -> int
  (** Observations fed so far. *)

  val mean : t -> float
  (** 0 when empty, mirroring the convention of reporting empty cells as 0. *)

  val variance : t -> float
  (** Unbiased sample variance; 0 with fewer than two observations. *)

  val stddev : t -> float
  (** Square root of [variance]. *)

  val min : t -> float
  (** Smallest observation.  @raise Invalid_argument when empty. *)

  val max : t -> float
  (** Largest observation.  @raise Invalid_argument when empty. *)

  val merge : t -> t -> t
  (** Combine two accumulators as if all values had been fed to one. *)
end
