let default_eps = 1e-9

let approx_eq ?(eps = default_eps) a b =
  abs_float (a -. b) <= eps *. Float.max 1.0 (Float.max (abs_float a) (abs_float b))

let approx_le ?(eps = default_eps) a b = a <= b || approx_eq ~eps a b
let approx_ge ?(eps = default_eps) a b = a >= b || approx_eq ~eps a b

let clamp ~lo ~hi x =
  if hi < lo then invalid_arg "Floatx.clamp: hi < lo";
  if x < lo then lo else if x > hi then hi else x

let is_finite x = Float.is_finite x

let sum l =
  (* Kahan compensated summation. *)
  let total = ref 0.0 and c = ref 0.0 in
  List.iter
    (fun x ->
      let y = x -. !c in
      let t = !total +. y in
      c := t -. !total -. y;
      total := t)
    l;
  !total

(* All-float record: the accumulator and compensation live unboxed, so
   the per-solve sums on the scheduler hot path allocate nothing beyond
   this one block. *)
type kahan = { mutable total : float; mutable comp : float }

let sum_array ?n a =
  let n = match n with Some n -> n | None -> Array.length a in
  if n < 0 || n > Array.length a then invalid_arg "Floatx.sum_array: bad n";
  let st = { total = 0.0; comp = 0.0 } in
  for i = 0 to n - 1 do
    let y = Array.unsafe_get a i -. st.comp in
    let t = st.total +. y in
    st.comp <- t -. st.total -. y;
    st.total <- t
  done;
  st.total
