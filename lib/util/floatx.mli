(** Approximate floating-point comparison helpers.

    Dominance checks and equal-finish-time invariants involve quantities
    spanning twelve orders of magnitude, so everything is compared with a
    combined absolute/relative tolerance. *)

val default_eps : float
(** 1e-9: the relative tolerance used throughout the library. *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq a b] iff [|a - b| <= eps * max(1, |a|, |b|)]. *)

val approx_le : ?eps:float -> float -> float -> bool
(** [a <= b] up to tolerance. *)

val approx_ge : ?eps:float -> float -> float -> bool

val clamp : lo:float -> hi:float -> float -> float
(** Clamp into [lo, hi].  @raise Invalid_argument if [hi < lo]. *)

val is_finite : float -> bool

val sum : float list -> float
(** Kahan-compensated summation, stable for long lists of mixed scale. *)

val sum_array : ?n:int -> float array -> float
(** {!sum} over the first [n] elements of an array (default: all) with no
    intermediate list — the same compensation sequence as [sum
    (Array.to_list a)], bit for bit, for use on per-solve hot paths.
    @raise Invalid_argument if [n] is negative or exceeds the length. *)
