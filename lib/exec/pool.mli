(** Shared fixed-size domain pool with a mutex/condvar work queue.

    This is the execution substrate shared by the batch campaign engine
    and the online service: a set of worker domains blocking on a
    condition variable until tasks arrive.  Three usage shapes are
    supported:

    - {!map_array}/{!map_outcomes}: distribute an array of independent
      computations and collect results *in input order*, whatever the
      completion order.  Exceptions are deterministic — always the one
      attached to the smallest failing input index.
    - {!run_chunks}: a barrier parallel-for over an index range [0, n),
      split into contiguous chunks whose boundaries depend only on [n]
      and the chunk count, so writes to disjoint per-index slots are
      bit-identical to a sequential loop.
    - {!reduce_chunks}: chunked float reduction whose partials are
      combined in ascending chunk order, so the result is deterministic
      for a given chunk count (and within rounding of the sequential
      sum).

    With [jobs <= 1] no domain is spawned and everything runs in the
    calling domain, in index order — byte-for-byte the sequential
    behaviour.  When observability probes are enabled ({!Obs.Probe.on})
    the pool records dispatched tasks, parallel sections, worker idle
    waits and a per-shard wall-time histogram, and each shard runs under
    an ["exec.shard"] span so traces show shard balance per worker
    lane. *)

type t
(** A pool of worker domains.  Values of this type must be released with
    {!shutdown} (or created through {!with_pool}). *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs] worker domains ([jobs <= 1] spawns none
    and makes the pool a sequential executor). *)

val size : t -> int
(** Number of worker domains (0 for a sequential pool). *)

val default_jobs : unit -> int
(** The runtime's recommended domain count for this machine; the meaning
    of [--jobs 0]. *)

val submit : t -> (unit -> unit) -> unit
(** [submit t job] enqueues [job] for execution by a worker domain.
    Raw building block for the structured operations below; the caller
    is responsible for any completion signalling. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f a] applies [f] to every element of [a] on the pool's
    workers and returns the results in input order.  If one or more
    tasks raise, the exception of the smallest failing index is
    re-raised (with its backtrace) after all tasks have drained. *)

val map_outcomes :
  t -> ('a -> 'b) -> 'a array -> ('b, exn * Printexc.raw_backtrace) result array
(** Isolation variant of {!map_array}: every task's exception is
    captured in its own slot instead of aborting the map, so one raising
    task never costs the results of the others.  Never raises (short of
    asserts); results are in input order. *)

val run_chunks : t -> ?chunks:int -> n:int -> (int -> int -> unit) -> unit
(** [run_chunks t ~n f] splits the index range [0, n) into at most
    [chunks] (default: pool size) contiguous chunks and calls
    [f lo hi] for each half-open chunk [\[lo, hi)] on the workers,
    returning once every chunk has finished (a barrier).  Chunk
    boundaries are a pure function of [n] and the chunk count
    ([n / chunks] indices each, the remainder spread over the leading
    chunks), so a kernel writing disjoint per-index slots produces
    bit-identical memory whatever the pool size.  On a sequential pool
    (or [chunks <= 1], or [n <= 0] where it is a no-op) this is exactly
    [f 0 n] in the calling domain.  If chunks raise, the exception of
    the smallest chunk index is re-raised after the barrier. *)

val chunk_bounds : n:int -> chunks:int -> int -> int * int
(** [chunk_bounds ~n ~chunks c] is the half-open range [\[lo, hi)] of
    chunk [c] over [0, n): [n / chunks] indices each with the remainder
    spread over the leading chunks.  Pure — this is the boundary
    function {!run_chunks} and {!reduce_chunks} use, exposed so callers
    can replicate the exact chunked association without a pool. *)

val reduce_chunks : t -> ?chunks:int -> n:int -> (int -> int -> float) -> float
(** [reduce_chunks t ~n f] evaluates [f lo hi] — a float accumulation
    over the half-open index chunk [\[lo, hi)] — for the same
    deterministic chunking as {!run_chunks}, and sums the partials in
    ascending chunk order with [+.].  With an explicit [chunks] the
    result is a pure function of [(n, chunks)] whatever the pool size —
    a sequential pool computes the identical partials in the calling
    domain — and equals the plain [f 0 n] up to float re-association.
    With the default chunk count (the pool size) a sequential pool runs
    exactly [f 0 n]; [n <= 0] returns [0.]. *)

val shutdown : t -> unit
(** Drains the queue, then joins every worker domain.  Idempotent.
    After [shutdown] returns no pool domain is alive, so a caller may
    safely [fork]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
    afterwards, also on exception. *)

val map_ordered : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** One-shot [with_pool ~jobs (fun t -> map_array t f a)]. *)

val map_outcomes_ordered :
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  ('b, exn * Printexc.raw_backtrace) result array
(** One-shot [with_pool ~jobs (fun t -> map_outcomes t f a)]. *)
