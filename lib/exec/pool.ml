type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_ready : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let m_tasks =
  Obs.Metrics.counter ~help:"tasks dispatched to pool workers" "exec.pool.tasks"

let m_sections =
  Obs.Metrics.counter ~help:"parallel sections (chunked for/reduce barriers)"
    "exec.pool.sections"

let m_idle_waits =
  Obs.Metrics.counter ~help:"times a worker went to sleep on an empty queue"
    "exec.pool.idle_waits"

let m_shard_us =
  Obs.Metrics.histogram ~help:"per-shard wall time, in microseconds"
    "exec.pool.shard_us"

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.closed do
    if Obs.Probe.on () then Obs.Metrics.incr m_idle_waits;
    Condition.wait t.work_ready t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.lock;
    job ();
    worker_loop t
  end

let create ~jobs =
  let size = if jobs <= 1 then 0 else jobs in
  let t =
    {
      size;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_ready = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  t.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

let default_jobs () = Domain.recommended_domain_count ()

let submit t job =
  if Obs.Probe.on () then Obs.Metrics.incr m_tasks;
  Mutex.lock t.lock;
  Queue.push job t.queue;
  Condition.signal t.work_ready;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let protect f x =
  try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ())

let map_outcomes t f a =
  let n = Array.length a in
  if t.size = 0 || n <= 1 then Array.map (protect f) a
  else begin
    let results = Array.make n None in
    let remaining = ref n in
    let all_done = Condition.create () in
    Array.iteri
      (fun i x ->
        submit t (fun () ->
            let outcome = protect f x in
            Mutex.lock t.lock;
            results.(i) <- Some outcome;
            remaining := !remaining - 1;
            if !remaining = 0 then Condition.broadcast all_done;
            Mutex.unlock t.lock))
      a;
    Mutex.lock t.lock;
    while !remaining > 0 do
      Condition.wait all_done t.lock
    done;
    Mutex.unlock t.lock;
    Array.map (function Some r -> r | None -> assert false) results
  end

let reraise_first outcomes =
  (* Re-raise the exception of the smallest failing index so that a
     parallel run fails exactly like the sequential one would. *)
  Array.iter
    (function Error (e, bt) -> Printexc.raise_with_backtrace e bt | Ok _ -> ())
    outcomes

let map_array t f a =
  let outcomes = map_outcomes t f a in
  reraise_first outcomes;
  Array.map (function Ok r -> r | Error _ -> assert false) outcomes

(* Chunk [c] of [chunks] over [0, n): the remainder indices go to the
   leading chunks, so boundaries depend only on (n, chunks). *)
let chunk_bounds ~n ~chunks c =
  let base = n / chunks and rem = n mod chunks in
  let lo = (c * base) + min c rem in
  let hi = lo + base + (if c < rem then 1 else 0) in
  (lo, hi)

let effective_chunks t ?chunks n =
  let chunks = match chunks with Some c -> c | None -> t.size in
  max 1 (min chunks n)

(* Worker domains record spans under their own tid, so a traced solve
   shows one lane per pool worker in the Chrome trace viewer. *)
let run_shard f lo hi =
  if not (Obs.Probe.on ()) then f lo hi
  else begin
    let sp = Obs.Span.start "exec.shard" in
    let t0 = Obs.Clock.now_ns () in
    let r = protect (fun () -> f lo hi) () in
    Obs.Metrics.observe m_shard_us (Obs.Clock.elapsed_us ~since:t0);
    Obs.Span.stop sp;
    match r with
    | Ok v -> v
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  end

(* Barrier: run [g c] for every chunk index on the workers, collect
   per-chunk outcomes, re-raise the smallest failing chunk's exception. *)
let barrier_chunks t ~chunks g =
  let outcomes = Array.make chunks (Ok ()) in
  let remaining = ref chunks in
  let all_done = Condition.create () in
  if Obs.Probe.on () then Obs.Metrics.incr m_sections;
  for c = 0 to chunks - 1 do
    submit t (fun () ->
        let outcome = protect g c in
        Mutex.lock t.lock;
        outcomes.(c) <- outcome;
        remaining := !remaining - 1;
        if !remaining = 0 then Condition.broadcast all_done;
        Mutex.unlock t.lock)
  done;
  Mutex.lock t.lock;
  while !remaining > 0 do
    Condition.wait all_done t.lock
  done;
  Mutex.unlock t.lock;
  reraise_first outcomes

let run_chunks t ?chunks ~n f =
  if n <= 0 then ()
  else begin
    let chunks = effective_chunks t ?chunks n in
    if t.size = 0 || chunks = 1 then f 0 n
    else
      barrier_chunks t ~chunks (fun c ->
          let lo, hi = chunk_bounds ~n ~chunks c in
          run_shard f lo hi)
  end

let reduce_chunks t ?chunks ~n f =
  if n <= 0 then 0.
  else begin
    let chunks = effective_chunks t ?chunks n in
    if chunks = 1 then f 0 n
    else if t.size = 0 then begin
      (* Sequential pool, explicit chunking: compute the same partials
         in the calling domain so the float association — and therefore
         the result — depends only on (n, chunks), never on the pool
         size. *)
      let acc = ref 0. in
      for c = 0 to chunks - 1 do
        let lo, hi = chunk_bounds ~n ~chunks c in
        acc := !acc +. f lo hi
      done;
      !acc
    end
    else begin
      let partials = Array.make chunks 0. in
      barrier_chunks t ~chunks (fun c ->
          let lo, hi = chunk_bounds ~n ~chunks c in
          partials.(c) <- run_shard f lo hi);
      (* Combine in ascending chunk order: deterministic for a given
       chunk count. *)
      let acc = ref 0. in
      for c = 0 to chunks - 1 do
        acc := !acc +. partials.(c)
      done;
      !acc
    end
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map_ordered ~jobs f a = with_pool ~jobs (fun t -> map_array t f a)

let map_outcomes_ordered ~jobs f a =
  with_pool ~jobs (fun t -> map_outcomes t f a)
