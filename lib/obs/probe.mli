(** The master switch of the observability layer.

    Instrumented hot paths ({!Sched.Equalize}'s bisection, the online
    service's event loop, the campaign pool's trial dispatch) guard
    every probe behind {!on}:

    {[
      if Obs.Probe.on () then Obs.Metrics.observe h latency
    ]}

    {!on} reads one mutable [bool] — no allocation, no clock read, no
    registry lookup — so with probes disabled the instrumented code
    differs from uninstrumented code by a single load-and-branch per
    probe site.  [test/test_obs.ml] enforces the stronger contract the
    solvers rely on: with probes disabled the instrumented bisection
    allocates {e zero} minor-heap words per objective evaluation (the
    same two-tolerance [Gc.minor_words] technique as [test_perf]) and
    solver results are bit-identical whether probes are on or off.

    The flag is process-global and not synchronised: flips are expected
    at startup (CLI [--trace] / [--metrics]) or around a measured
    region, not concurrently with a racing hot loop.  A worker domain
    that reads a stale value for a few events records a few events less
    — never corrupts state. *)

val on : unit -> bool
(** True when probes are enabled.  The hot-path guard; zero-allocation. *)

val enable : unit -> unit
(** Turn all probes on.  Spans start collecting and metrics start
    recording from the next probe site onwards. *)

val disable : unit -> unit
(** Turn all probes off.  Already-collected spans and metric values are
    kept (export remains possible); new events are dropped. *)

val with_enabled : (unit -> 'a) -> 'a
(** Run a thunk with probes enabled, restoring the previous state
    afterwards (also on exception). *)

val with_disabled : (unit -> 'a) -> 'a
(** Run a thunk with probes disabled, restoring the previous state
    afterwards (also on exception). *)
