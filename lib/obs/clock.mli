(** Monotonic time source for spans and latency metrics.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] through a C stub: the
    reading never steps backwards (unlike [Unix.gettimeofday] under NTP
    adjustment), so span durations and event latencies are always
    nonnegative.  The origin is unspecified — readings are only
    meaningful as differences within one process; the Chrome-trace
    exporter rebases them against the first collected span.

    The native-code entry point is [@@noalloc] with an unboxed [int64]
    result: a clock read performs no OCaml allocation, which keeps
    enabled probes cheap and disabled probes (which never call it)
    exactly free. *)

val now_ns : unit -> int64
(** Monotonic nanoseconds since an arbitrary per-boot origin. *)

val now_us : unit -> float
(** {!now_ns} scaled to microseconds (the Chrome [trace_event] unit).
    Exact below 2{^53} ns of uptime (~104 days), one-ulp rounding
    beyond. *)

val elapsed_us : since:int64 -> float
(** Microseconds elapsed since an earlier {!now_ns} reading; >= 0. *)
