/* Monotonic clock for the observability layer.

   CLOCK_MONOTONIC never steps backwards across NTP adjustments, which
   is what span durations need.  The native entry point is declared
   [@@noalloc] with an unboxed int64 result, so an enabled probe's clock
   read costs one syscall-free vDSO call and zero OCaml allocation. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

int64_t obs_clock_monotonic_ns_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim value obs_clock_monotonic_ns(value unit)
{
  return caml_copy_int64(obs_clock_monotonic_ns_unboxed(unit));
}
