type format = Text | Prometheus | Json

let format_of_string s =
  match String.lowercase_ascii s with
  | "text" | "table" -> Text
  | "prom" | "prometheus" -> Prometheus
  | "json" -> Json
  | other ->
    invalid_arg
      (Printf.sprintf "metrics format %S (expected text, prom or json)" other)

let format_name = function
  | Text -> "text"
  | Prometheus -> "prom"
  | Json -> "json"

let render = function
  | Text -> Metrics.render_table ()
  | Prometheus -> Metrics.render_prometheus ()
  | Json -> Metrics.render_json ()

let configure ?trace ?metrics () =
  Span.reset ();
  Metrics.reset ();
  let wanted = trace <> None || metrics <> None in
  if wanted then Probe.enable ();
  wanted

let finish ?trace ?metrics ?(out = print_string) () =
  Span.stop_all ();
  (match trace with
  | None -> ()
  | Some path ->
    let events = Span.events () in
    let text = Trace_json.to_chrome events in
    let n = Trace_json.validate_chrome text in
    Trace_json.write ~path text;
    out
      (Printf.sprintf "wrote %s (%d span%s%s, valid Chrome trace JSON)\n" path n
         (if n = 1 then "" else "s")
         (match Span.dropped () with
         | 0 -> ""
         | d -> Printf.sprintf ", %d dropped" d)));
  match metrics with
  | None -> ()
  | Some fmt ->
    let text = render fmt in
    out text;
    if String.length text > 0 && text.[String.length text - 1] <> '\n' then
      out "\n"
