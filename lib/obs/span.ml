type t = int

let null = -1
let is_null t = t < 0

type event = {
  name : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  depth : int;
  args : (string * string) list;
}

(* An open span lives on its domain's stack until stopped. *)
type open_span = {
  id : int;
  oname : string;
  start_ns : int64;
  otid : int;
  odepth : int;
  mutable oargs : (string * string) list;
}

let capacity = 1_048_576

(* One global collector: a mutex guards the id counter, the per-domain
   stacks and the completed buffer.  Spans are started/stopped at event
   granularity (solves, trials), not inner-loop granularity, so one lock
   is not a contention concern — and probes-off costs nothing at all. *)
let lock = Mutex.create ()
let next_id = ref 0
let stacks : (int, open_span list ref) Hashtbl.t = Hashtbl.create 8
let completed : event list ref = ref []
let n_completed = ref 0
let dropped_count = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let stack_of tid =
  match Hashtbl.find_opt stacks tid with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.add stacks tid s;
    s

let start ?(args = []) name =
  if not (Probe.on ()) then null
  else begin
    let t0 = Clock.now_ns () in
    let tid = (Domain.self () :> int) in
    locked (fun () ->
        let id = !next_id in
        incr next_id;
        let stack = stack_of tid in
        stack :=
          { id; oname = name; start_ns = t0; otid = tid;
            odepth = List.length !stack; oargs = args }
          :: !stack;
        id)
  end

let add_attr t k v =
  if t >= 0 then
    locked (fun () ->
        Hashtbl.iter
          (fun _ stack ->
            List.iter
              (fun sp -> if sp.id = t then sp.oargs <- (k, v) :: sp.oargs)
              !stack)
          stacks)

(* Append a finished span; must hold [lock]. *)
let complete ~stop_ns sp =
  if !n_completed >= capacity then incr dropped_count
  else begin
    let dur = Int64.to_float (Int64.sub stop_ns sp.start_ns) /. 1e3 in
    completed :=
      {
        name = sp.oname;
        ts_us = Int64.to_float sp.start_ns /. 1e3;
        dur_us = Float.max 0. dur;
        tid = sp.otid;
        depth = sp.odepth;
        args = sp.oargs;
      }
      :: !completed;
    incr n_completed
  end

let stop t =
  if t >= 0 then begin
    let stop_ns = Clock.now_ns () in
    let tid = (Domain.self () :> int) in
    locked (fun () ->
        match Hashtbl.find_opt stacks tid with
        | None -> ()
        | Some stack ->
          if List.exists (fun sp -> sp.id = t) !stack then begin
            (* Close the children above [t] first (they share the stop
               time), so nesting stays well-formed whatever the caller
               forgot. *)
            let rec unwind = function
              | [] -> []
              | sp :: rest ->
                complete ~stop_ns sp;
                if sp.id = t then rest else unwind rest
            in
            stack := unwind !stack
          end)
  end

let with_span ?args name f =
  let sp = start ?args name in
  Fun.protect ~finally:(fun () -> stop sp) f

let stop_all () =
  let stop_ns = Clock.now_ns () in
  locked (fun () ->
      Hashtbl.iter
        (fun _ stack ->
          List.iter (complete ~stop_ns) !stack;
          stack := [])
        stacks)

let events () =
  let evs = locked (fun () -> Array.of_list !completed) in
  Array.sort
    (fun a b ->
      match Int.compare a.tid b.tid with
      | 0 -> (
        match Float.compare a.ts_us b.ts_us with
        | 0 -> Int.compare a.depth b.depth
        | c -> c)
      | c -> c)
    evs;
  evs

let reset () =
  locked (fun () ->
      Hashtbl.reset stacks;
      completed := [];
      n_completed := 0;
      dropped_count := 0)

let open_depth () =
  let tid = (Domain.self () :> int) in
  locked (fun () ->
      match Hashtbl.find_opt stacks tid with
      | None -> 0
      | Some s -> List.length !s)

let dropped () = locked (fun () -> !dropped_count)
