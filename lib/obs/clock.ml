external now_ns : unit -> (int64[@unboxed])
  = "obs_clock_monotonic_ns" "obs_clock_monotonic_ns_unboxed"
[@@noalloc]

let now_us () = Int64.to_float (now_ns ()) /. 1e3

let elapsed_us ~since =
  let d = Int64.sub (now_ns ()) since in
  (* Monotonic, so nonnegative up to clock quirks; clamp anyway. *)
  Float.max 0. (Int64.to_float d /. 1e3)
