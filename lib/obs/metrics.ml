type counter = { cname : string; chelp : string; cv : int Atomic.t }
type gauge = { gname : string; ghelp : string; mutable gv : float }

(* Quarter-octave log buckets: slot 0 is underflow (v <= 2^-16,
   nonpositive, NaN), slots 1..n_regular cover [2^-16, 2^48) with bucket
   k spanning [2^((min_exp+k-1)/4), 2^((min_exp+k)/4)), the last slot is
   overflow.  256 int slots = 2 KB per histogram. *)
let n_regular = 256
let min_exp = -64 (* quarter-octaves: lower edge 2^(-64/4) = 2^-16 *)

type histogram = {
  hname : string;
  hhelp : string;
  buckets : int array; (* n_regular + 2 slots *)
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type instrument = C of counter | G of gauge | H of histogram

let lock = Mutex.create ()
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name make match_ =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some i -> (
        match match_ i with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %s already registered as a %s" name
               (kind_name i)))
      | None ->
        let v, i = make () in
        Hashtbl.add registry name i;
        v)

let counter ?(help = "") name =
  register name
    (fun () ->
      let c = { cname = name; chelp = help; cv = Atomic.make 0 } in
      (c, C c))
    (function C c -> Some c | _ -> None)

let gauge ?(help = "") name =
  register name
    (fun () ->
      let g = { gname = name; ghelp = help; gv = 0. } in
      (g, G g))
    (function G g -> Some g | _ -> None)

let fresh_histogram name help =
  {
    hname = name;
    hhelp = help;
    buckets = Array.make (n_regular + 2) 0;
    hcount = 0;
    hsum = 0.;
    hmin = infinity;
    hmax = neg_infinity;
  }

let histogram ?(help = "") name =
  register name
    (fun () ->
      let h = fresh_histogram name help in
      (h, H h))
    (function H h -> Some h | _ -> None)

let incr c = ignore (Atomic.fetch_and_add c.cv 1)
let add c n = ignore (Atomic.fetch_and_add c.cv n)
let count c = Atomic.get c.cv
let set g v = g.gv <- v
let value g = g.gv

let slot_of v =
  if Float.is_nan v || v <= 0. then 0
  else if v = infinity then n_regular + 1
  else
    let raw = int_of_float (Float.floor (4. *. Float.log2 v)) in
    if raw < min_exp then 0
    else if raw >= min_exp + n_regular then n_regular + 1
    else 1 + raw - min_exp

(* Geometric midpoint of a regular slot. *)
let slot_mid k = Float.exp2 (float_of_int (min_exp + k - 1) /. 4. +. 0.125)

let observe h v =
  let s = slot_of v in
  locked (fun () ->
      h.buckets.(s) <- h.buckets.(s) + 1;
      h.hcount <- h.hcount + 1;
      if Float.is_finite v && v > 0. then begin
        h.hsum <- h.hsum +. v;
        if v < h.hmin then h.hmin <- v;
        if v > h.hmax then h.hmax <- v
      end)

let hist_count h = h.hcount
let hist_sum h = h.hsum

let quantile h q =
  if Float.is_nan q || q < 0. || q > 1. then
    invalid_arg "Obs.Metrics.quantile: q must be in [0, 1]";
  locked (fun () ->
      if h.hcount = 0 then 0.
      else begin
        let target = Util.Stats.Quantile.rank ~count:h.hcount ~q in
        let cum = ref 0 and slot = ref (n_regular + 1) in
        (try
           for k = 0 to n_regular + 1 do
             cum := !cum + h.buckets.(k);
             if !cum >= target then begin
               slot := k;
               raise Exit
             end
           done
         with Exit -> ());
        let raw =
          if !slot = 0 then if Float.is_finite h.hmin then h.hmin else 0.
          else if !slot = n_regular + 1 then
            if Float.is_finite h.hmax then h.hmax else infinity
          else slot_mid !slot
        in
        if Float.is_finite h.hmin && Float.is_finite h.hmax then
          Float.min h.hmax (Float.max h.hmin raw)
        else raw
      end)

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | C c -> Atomic.set c.cv 0
          | G g -> g.gv <- 0.
          | H h ->
            Array.fill h.buckets 0 (Array.length h.buckets) 0;
            h.hcount <- 0;
            h.hsum <- 0.;
            h.hmin <- infinity;
            h.hmax <- neg_infinity)
        registry)

(* --- exporters --------------------------------------------------------- *)

let sorted_instruments () =
  locked (fun () -> Hashtbl.fold (fun name i acc -> (name, i) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* [quantile] takes the registry lock, so compute quantiles outside
   [locked] sections only. *)
let hist_quantiles h = (quantile h 0.5, quantile h 0.9, quantile h 0.99)

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let render_table () =
  let header = [ "metric"; "type"; "value"; "mean"; "p50"; "p90"; "p99"; "max" ] in
  let rows =
    List.map
      (fun (name, i) ->
        match i with
        | C c -> [ name; "counter"; string_of_int (count c); ""; ""; ""; ""; "" ]
        | G g -> [ name; "gauge"; fnum g.gv; ""; ""; ""; ""; "" ]
        | H h ->
          let p50, p90, p99 = hist_quantiles h in
          let mean =
            if h.hcount = 0 then 0. else h.hsum /. float_of_int h.hcount
          in
          [
            name; "histogram"; string_of_int h.hcount; fnum mean; fnum p50;
            fnum p90; fnum p99;
            fnum (if Float.is_finite h.hmax then h.hmax else 0.);
          ])
      (sorted_instruments ())
  in
  let all = header :: rows in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun j cell ->
         if String.length cell > widths.(j) then widths.(j) <- String.length cell))
    all;
  let render_row cells =
    String.concat "  "
      (List.mapi
         (fun j cell ->
           if j = 0 then
             cell ^ String.make (widths.(j) - String.length cell) ' '
           else String.make (widths.(j) - String.length cell) ' ' ^ cell)
         cells)
  in
  let sep =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)
  ^ "\n"

let prom_name name =
  "cosched_"
  ^ String.map (fun c -> if c = '.' || c = '-' then '_' else c) name

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" v

let render_prometheus () =
  let b = Buffer.create 1024 in
  let meta name help kind =
    if help <> "" then
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (name, i) ->
      let pname = prom_name name in
      match i with
      | C c ->
        meta pname c.chelp "counter";
        Buffer.add_string b (Printf.sprintf "%s %d\n" pname (count c))
      | G g ->
        meta pname g.ghelp "gauge";
        Buffer.add_string b (Printf.sprintf "%s %s\n" pname (prom_float g.gv))
      | H h ->
        let p50, p90, p99 = hist_quantiles h in
        meta pname h.hhelp "summary";
        Buffer.add_string b
          (Printf.sprintf "%s{quantile=\"0.5\"} %s\n" pname (prom_float p50));
        Buffer.add_string b
          (Printf.sprintf "%s{quantile=\"0.9\"} %s\n" pname (prom_float p90));
        Buffer.add_string b
          (Printf.sprintf "%s{quantile=\"0.99\"} %s\n" pname (prom_float p99));
        Buffer.add_string b
          (Printf.sprintf "%s_sum %s\n" pname (prom_float h.hsum));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" pname h.hcount))
    (sorted_instruments ());
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

let render_json () =
  let instruments = sorted_instruments () in
  let pick f = List.filter_map f instruments in
  let counters =
    pick (function
      | name, C c -> Some (Printf.sprintf "\"%s\":%d" (json_escape name) (count c))
      | _ -> None)
  in
  let gauges =
    pick (function
      | name, G g ->
        Some (Printf.sprintf "\"%s\":%s" (json_escape name) (json_float g.gv))
      | _ -> None)
  in
  let histograms =
    pick (function
      | name, H h ->
        let p50, p90, p99 = hist_quantiles h in
        Some
          (Printf.sprintf
             "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
             (json_escape name) h.hcount (json_float h.hsum)
             (json_float (if Float.is_finite h.hmin then h.hmin else 0.))
             (json_float (if Float.is_finite h.hmax then h.hmax else 0.))
             (json_float p50) (json_float p90) (json_float p99))
      | _ -> None)
  in
  Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}"
    (String.concat "," counters)
    (String.concat "," gauges)
    (String.concat "," histograms)
