type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

(* --- strict parser ----------------------------------------------------- *)

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "json: %s at byte %d" msg !pos) in
  let peek () = if !pos < n then text.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c);
    advance ()
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = text.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub text !pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* UTF-8 encode the BMP code point. *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail "bad escape");
        loop ()
      end
      else if Char.code c < 0x20 then fail "control character in string"
      else begin
        Buffer.add_char b c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ()
          | '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements ()
          | ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* --- chrome export ----------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dedup_args args =
  let seen = Hashtbl.create 4 in
  List.filter
    (fun (k, _) ->
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    args

let to_chrome (events : Span.event array) =
  let t0 =
    Array.fold_left
      (fun acc (e : Span.event) -> Float.min acc e.Span.ts_us)
      infinity events
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  Array.iteri
    (fun i (e : Span.event) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"cosched\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
           (escape e.Span.name)
           (e.Span.ts_us -. t0)
           e.Span.dur_us e.Span.tid);
      (match dedup_args e.Span.args with
      | [] -> ()
      | args ->
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
          args;
        Buffer.add_char b '}');
      Buffer.add_char b '}')
    events;
  Buffer.add_string b
    (Printf.sprintf
       "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"cosched_dropped_spans\":\"%d\"}}"
       (Span.dropped ()));
  Buffer.contents b

(* --- validity checks ---------------------------------------------------- *)

let validate_chrome text =
  let doc = parse text in
  let events =
    match member "traceEvents" doc with
    | Some (List evs) -> evs
    | Some _ -> failwith "chrome trace: traceEvents is not an array"
    | None -> failwith "chrome trace: missing traceEvents"
  in
  List.iteri
    (fun i ev ->
      let ctx msg = failwith (Printf.sprintf "chrome trace: event %d: %s" i msg) in
      let str key =
        match member key ev with
        | Some (Str s) -> s
        | _ -> ctx (Printf.sprintf "missing string %S" key)
      in
      let num key =
        match member key ev with
        | Some (Num f) -> f
        | _ -> ctx (Printf.sprintf "missing number %S" key)
      in
      ignore (str "name");
      ignore (num "ts");
      ignore (num "pid");
      ignore (num "tid");
      let ph = str "ph" in
      if ph = "X" then begin
        let dur = num "dur" in
        if not (dur >= 0.) then ctx "negative dur"
      end)
    events;
  List.length events

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let validate_prometheus text =
  let typed = Hashtbl.create 16 in
  let samples = ref 0 in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun lineno line ->
      let fail msg =
        failwith
          (Printf.sprintf "prometheus exposition: line %d: %s" (lineno + 1) msg)
      in
      if line = "" then ()
      else if String.length line >= 1 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "HELP" :: name :: _ when name <> "" -> ()
        | "#" :: "TYPE" :: name :: [ kind ] ->
          if
            not
              (List.mem kind
                 [ "counter"; "gauge"; "summary"; "histogram"; "untyped" ])
          then fail ("unknown TYPE " ^ kind);
          Hashtbl.replace typed name ()
        | _ -> fail "malformed comment (expected # HELP or # TYPE)"
      end
      else begin
        (* name[{labels}] value *)
        let len = String.length line in
        if not (is_name_start line.[0]) then fail "bad metric name start";
        let i = ref 0 in
        while !i < len && is_name_char line.[!i] do
          incr i
        done;
        let name = String.sub line 0 !i in
        if !i < len && line.[!i] = '{' then begin
          (* scan the label block: quoted values may contain anything *)
          incr i;
          let in_q = ref false and esc = ref false and closed = ref false in
          while !i < len && not !closed do
            let c = line.[!i] in
            (if !in_q then
               if !esc then esc := false
               else if c = '\\' then esc := true
               else if c = '"' then in_q := false
               else ()
             else if c = '"' then in_q := true
             else if c = '}' then closed := true);
            incr i
          done;
          if not !closed then fail "unterminated label block"
        end;
        if !i >= len || line.[!i] <> ' ' then fail "expected space before value";
        let value = String.sub line (!i + 1) (len - !i - 1) in
        (match value with
        | "NaN" | "+Inf" | "-Inf" -> ()
        | v ->
          if float_of_string_opt v = None then fail ("bad sample value " ^ v));
        let base =
          let strip suffix =
            if
              String.length name > String.length suffix
              && String.sub name
                   (String.length name - String.length suffix)
                   (String.length suffix)
                 = suffix
            then
              Some (String.sub name 0 (String.length name - String.length suffix))
            else None
          in
          match (strip "_sum", strip "_count") with
          | Some b, _ when Hashtbl.mem typed b -> b
          | _, Some b when Hashtbl.mem typed b -> b
          | _ -> name
        in
        if not (Hashtbl.mem typed base) then
          fail ("sample " ^ name ^ " has no preceding # TYPE");
        incr samples
      end)
    lines;
  !samples

let write ~path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text);
  Sys.rename tmp path
