let enabled = ref false

let on () = !enabled
let enable () = enabled := true
let disable () = enabled := false

let with_state v f =
  let prev = !enabled in
  enabled := v;
  Fun.protect ~finally:(fun () -> enabled := prev) f

let with_enabled f = with_state true f
let with_disabled f = with_state false f
