(** Chrome [trace_event] export and the bundled validity checkers.

    {!to_chrome} renders collected {!Span.event}s as the JSON object
    format of the Chrome tracing spec — one complete (["ph":"X"]) event
    per span, microsecond timestamps rebased to the earliest span — a
    file that loads directly in [chrome://tracing] and Perfetto.

    The module also carries a small strict JSON parser ({!parse}) and
    two validity checks built on it: {!validate_chrome} accepts exactly
    the traces this module emits (every emitted trace is checked before
    it is written — a mangled emission fails the run, it does not land
    on disk), and {!validate_prometheus} line-checks the text
    exposition {!Metrics.render_prometheus} produces.  The test suite
    round-trips arbitrary span interleavings through these checkers. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list
(** Minimal JSON document tree ({!Obj} fields in source order). *)

val parse : string -> json
(** Strict RFC-8259 subset parser: objects, arrays, strings with the
    standard escapes ([\uXXXX] accepted, decoded as-is into UTF-8 for
    the BMP), numbers, literals; rejects trailing garbage.
    @raise Failure with a byte offset on malformed input. *)

val member : string -> json -> json option
(** Field lookup on an {!Obj}; [None] on other constructors. *)

val to_chrome : Span.event array -> string
(** The [{"traceEvents":[...],"displayTimeUnit":"ms",...}] object.
    Timestamps are microseconds rebased so the earliest span starts at
    0; span attributes become the event's ["args"] (duplicate keys
    deduplicated, latest {!Span.add_attr} binding wins); the collector's
    drop count (see {!Span.dropped}) is exported as
    ["cosched_dropped_spans"] metadata rather than silently omitted. *)

val validate_chrome : string -> int
(** Parse a Chrome trace and check shape: top-level object with a
    ["traceEvents"] array whose every element has string ["name"] and
    ["ph"], numeric ["ts"], ["pid"] and ["tid"], phase ["X"] events
    carrying numeric ["dur"] >= 0.  Returns the event count.
    @raise Failure describing the first violation. *)

val validate_prometheus : string -> int
(** Check Prometheus text-exposition well-formedness: every line is a
    comment ([# HELP]/[# TYPE] with a known kind), blank, or a sample
    [name{labels} value] with a legal metric name and a float value;
    every sample's base name has a preceding [# TYPE].  Returns the
    number of sample lines.
    @raise Failure describing the first offending line. *)

val write : path:string -> string -> unit
(** Write atomically via temp file + rename in [path]'s directory (the
    repo-wide convention: a crash never leaves a torn file). *)
