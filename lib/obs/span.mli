(** Nestable tracing spans with a thread-safe in-memory collector.

    A span brackets one unit of work — a makespan bisection, an online
    event, a campaign trial — with monotonic {!Clock} timestamps and
    optional string attributes.  Spans nest: each domain keeps a stack
    of open spans, a span's [depth] is its position on that stack, and
    {!stop} closes any still-open children first, so the collected
    events are always properly nested per domain (two events of one
    domain are either disjoint or contained — property-tested under
    arbitrary start/stop interleavings in [test/test_obs.ml]).

    With probes off ({!Probe.on} false), {!start} returns {!null}
    without reading the clock or allocating, and {!stop} on {!null} is a
    no-op — an instrumented region costs two load-and-branch
    instructions.  With probes on, completed spans accumulate in a
    mutex-guarded global buffer (safe across domains; [tid] is the
    collecting domain's id) until exported — see
    {!Trace_json.to_chrome} for the Chrome [trace_event] rendering —
    or discarded with {!reset}.

    The collector holds at most {!capacity} completed spans; beyond
    that new spans are counted in {!dropped} instead of stored, so an
    unbounded run cannot exhaust memory (the trace exporter surfaces
    the drop count rather than truncating silently). *)

type t
(** A span handle: either live (returned by {!start} with probes on) or
    the inert {!null}. *)

val null : t
(** The inert handle: {!stop}, {!add_attr} and {!is_null} accept it and
    do nothing.  What {!start} returns when probes are off. *)

val is_null : t -> bool

val start : ?args:(string * string) list -> string -> t
(** Open a span named [name] on the calling domain's stack.  [args] are
    attached verbatim to the exported event.  Returns {!null} (having
    read neither clock nor lock) when probes are off. *)

val add_attr : t -> string -> string -> unit
(** Attach one more attribute to a live open span; silently ignored on
    {!null} or an already-closed span.  Later bindings of the same key
    shadow earlier ones in the export. *)

val stop : t -> unit
(** Close the span, first closing any children still open above it on
    the same domain's stack (each child keeps its own start time; all
    share this stop time).  No-op on {!null}, on a span already closed,
    or on a domain that did not start it. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f ()] in a span, closing it also on
    exception. *)

type event = {
  name : string;
  ts_us : float;    (** Start, microseconds on the {!Clock} timeline. *)
  dur_us : float;   (** Duration in microseconds, >= 0. *)
  tid : int;        (** Collecting domain's id. *)
  depth : int;      (** Nesting depth at start (0 = top level). *)
  args : (string * string) list;
}
(** One completed span, the unit {!Trace_json} exports. *)

val events : unit -> event array
(** Snapshot of all completed spans, sorted by [(tid, ts_us, -depth)] —
    parents before the children they contain. *)

val stop_all : unit -> unit
(** Close every open span on every domain (export helpers call this so
    a trace written mid-span is still well formed). *)

val reset : unit -> unit
(** Discard all completed and open spans and zero {!dropped}. *)

val open_depth : unit -> int
(** Open spans on the calling domain's stack (0 when quiescent). *)

val capacity : int
(** Maximum completed spans retained (1_048_576). *)

val dropped : unit -> int
(** Completed spans discarded because the collector was full. *)
