(** Process-global metrics registry: counters, gauges and log-scale
    histograms, with text-table, Prometheus-exposition and JSON
    exporters.

    Instruments register once at module initialisation (registration is
    idempotent by name and returns the existing instrument) and record
    through the returned handle; recording is guarded by the caller with
    {!Probe.on} so a disabled probe site costs one load-and-branch and
    allocates nothing.  Handles are cheap mutable cells: {!incr} is an
    atomic fetch-and-add, histogram observation takes the registry mutex
    for a few bucket increments — safe from any domain.

    Histograms are logarithmic: buckets at quarter-octave boundaries
    [2^(i/4)], covering [[2^-16, 2^48]] with explicit underflow/overflow
    buckets, so one histogram spans nanosecond latencies and
    million-count iteration totals with <= 9% relative quantile error.
    {!quantile} interpolates p50/p90/p99 from the bucket counts;
    exact count, sum, min and max are tracked alongside. *)

type counter
(** A monotone integer count (solves, warm hits, retries). *)

type gauge
(** A last-value float (queue depth, live jobs). *)

type histogram
(** A log-scale distribution (latencies, iteration counts). *)

val counter : ?help:string -> string -> counter
(** Register (or fetch) the counter named [name].  Names are
    dot-separated lowercase, e.g. ["equalize.solves"].
    @raise Invalid_argument if [name] is registered as another kind. *)

val gauge : ?help:string -> string -> gauge
(** Register (or fetch) a gauge.
    @raise Invalid_argument if [name] is registered as another kind. *)

val histogram : ?help:string -> string -> histogram
(** Register (or fetch) a histogram.
    @raise Invalid_argument if [name] is registered as another kind. *)

val incr : counter -> unit
(** Add 1.  Atomic; no allocation. *)

val add : counter -> int -> unit
(** Add [n] (may be any integer; negative additions are for tests).
    Atomic; no allocation. *)

val set : gauge -> float -> unit
(** Record the instantaneous value. *)

val observe : histogram -> float -> unit
(** Record one sample.  Nonpositive, NaN and infinite samples land in
    the underflow/overflow buckets and are excluded from min/max. *)

val count : counter -> int
(** Current value. *)

val value : gauge -> float
(** Last value set (0 before the first {!set}). *)

val hist_count : histogram -> int
(** Samples observed. *)

val hist_sum : histogram -> float
(** Sum of finite positive samples. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [[0, 1]]: the geometric midpoint of the
    bucket containing the [q]-th sample, clamped to the observed
    [min]/[max]; 0 when the histogram is empty.  The target rank is the
    shared [Util.Stats.Quantile.rank], so this agrees with the
    exact-array nearest-rank quantile to within the documented <= 9%
    bucket resolution (QCheck-checked in [test_obs]).
    @raise Invalid_argument if [q] is outside [[0, 1]]. *)

val reset : unit -> unit
(** Zero every registered instrument's value; registrations (and
    handles) survive.  The CLI resets between repeated runs so each
    report covers one run. *)

val render_table : unit -> string
(** Aligned text table, one instrument per row (histograms show count,
    mean, p50/p90/p99, max), sorted by name.  Instruments with zero
    activity are included — absence of traffic is signal too. *)

val render_prometheus : unit -> string
(** Prometheus text exposition (version 0.0.4): [# HELP]/[# TYPE]
    comments, counters as [counter], gauges as [gauge], histograms as
    [summary] with [quantile] labels plus [_sum]/[_count] series.
    Metric names are prefixed [cosched_] with dots mapped to
    underscores.  Parses with {!Trace_json.validate_prometheus}. *)

val render_json : unit -> string
(** One JSON object [{"counters":{...},"gauges":{...},
    "histograms":{...}}]; histogram entries carry count/sum/min/max and
    the three quantiles.  Parses with {!Trace_json.parse}. *)
