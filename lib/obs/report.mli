(** CLI-facing glue: flag parsing, probe setup and end-of-run output.

    [bin/cosched] (every subcommand) and [bench/main] accept
    [--trace FILE] and [--metrics text|prom|json]; both route through
    this module so the semantics are identical everywhere: requesting
    either output enables probes for the run ({!configure}), and at exit
    the trace is validated then written atomically and the metrics
    report is printed ({!finish}).  A trace that fails the bundled
    {!Trace_json.validate_chrome} check aborts instead of writing a
    corrupt file. *)

type format = Text | Prometheus | Json
(** Metrics output format: aligned table, Prometheus text exposition,
    or one JSON object. *)

val format_of_string : string -> format
(** ["text"], ["prom"]/["prometheus"], ["json"] — case-insensitive.
    @raise Invalid_argument naming the accepted spellings otherwise. *)

val format_name : format -> string
(** Canonical spelling: "text", "prom", "json". *)

val render : format -> string
(** Render the current {!Metrics} registry in the given format. *)

val configure : ?trace:string -> ?metrics:format -> unit -> bool
(** Reset spans and metric values, then enable probes iff a trace path
    or a metrics format was requested.  Returns whether probes were
    enabled — callers pass the same options to {!finish}. *)

val finish :
  ?trace:string -> ?metrics:format -> ?out:(string -> unit) -> unit -> unit
(** End-of-run output: close all open spans; if [trace] was given,
    validate the Chrome export and {!Trace_json.write} it to the path
    (followed by a one-line [out] note with the span/drop counts); if
    [metrics] was given, [out] the rendered report.  [out] defaults to
    [print_string].  Probes are left in their current state.
    @raise Failure if the emitted trace fails its own validity check. *)
