(** The event-driven online co-scheduling service (the tent of the
    subsystem).

    The core is a {e stepwise} live instance ({!live}): external events —
    {!submit}, {!cancel}, {!advance} — are pushed one at a time, in
    nondecreasing model time; predicted job completions are driven
    through an internal {!Simulator.Engine}.  At each event the live
    state integrates progress ({!State.advance}), then the {!Policy}
    decides whether to re-solve.  A re-solve treats the residual work as
    a static instance of the paper's problem and runs the
    DominantMinRatio pipeline through {!Incremental} — warm-started
    ([Warm]) or from scratch ([Cold], the baseline the warm counters are
    measured against).

    {!run} replays a whole {!Workload_stream} through the same live core
    and the [Serve] daemon feeds it from sockets, so an offline replay
    and a served stream of the same events produce identical schedules
    (the daemon-vs-offline equivalence property of the serve test
    suite).

    Completion handling exploits the structure of equalised schedules:
    all applications sharing a solve finish together, so a single
    next-completion event per allocation epoch sweeps the whole cohort
    (jobs within a 1e-9 remaining-work fraction), and re-solve epochs
    make superseded predictions inert.

    Whatever the policy decides, a re-solve is forced when jobs are
    queued and nothing is running — deferral policies trade response
    time for migrations, but never starve.

    With {!Obs.Probe.on}, every arrival/departure/completion opens a
    [service.*] tracing span and records per-event wall time plus
    queue-depth and live-job gauges; probes off, the handlers pay one
    flag test and the served schedule is bit-identical. *)

type config = {
  policy : Policy.t;
  mode : Incremental.mode;
  validate : bool;
      (** Check processor/cache conservation after every event and
          re-solve (raises [Failure] on violation). *)
  record : bool;
      (** Keep a per-re-solve allocation snapshot (for the warm-vs-cold
          equivalence property). *)
}

val default_config : config
(** [Every_event], [Warm], no validation, no recording. *)

type snapshot = {
  time : float;
  job_ids : int array;     (** Live jobs at the re-solve, arrival order. *)
  procs : float array;
  cache : float array;
  k : float;               (** Equalised makespan of the re-solve. *)
}

type report = {
  metrics : Metrics.t;
  jobs : State.job list;   (** All retired jobs, retirement order. *)
  snapshots : snapshot list;  (** Oldest first; empty unless [record]. *)
}

type notice =
  | Resolved of { time : float; epoch : int; k : float }
      (** A re-solve committed new allocations; [epoch] is the re-solve
          count (see {!live_epoch}), [k] the equalised makespan. *)
  | Completed of { time : float; id : int }
      (** Job [id] finished at [time]. *)
(** What a {!live_create} listener observes — the daemon turns these
    into [subscribe] push frames. *)

type live
(** A stepwise service instance: live job state, the completion-event
    engine, the warm {!Incremental} re-solver and the run counters. *)

val live_create :
  ?config:config -> ?pool:Exec.Pool.t -> ?shard_min:int ->
  ?listener:(notice -> unit) -> platform:Model.Platform.t ->
  unit -> live
(** Fresh instance at model time 0.  The optional [listener] is invoked
    synchronously on every re-solve and completion.

    [pool], when given, shards the per-job passes of every warm re-solve
    across its worker domains once the live set reaches [shard_min]
    jobs (default 4096) — bit-identical to the sequential path (see
    {!Incremental.solve_state}); the caller owns the pool's lifetime.
    @raise Invalid_argument on an invalid [config.policy]. *)

val live_now : live -> float
(** Current model time (the internal engine clock). *)

val live_epoch : live -> int
(** Allocation epoch: the number of re-solves committed so far.  Every
    daemon response is tagged with this value so clients can detect
    stale allocation views. *)

val live_state : live -> State.t
(** The underlying live job state (read it, don't mutate it — the
    service owns all transitions). *)

val last_makespan : live -> float option
(** Equalised makespan [k] of the most recent re-solve; [None] before
    the first. *)

val find_job : live -> int -> State.job option
(** Look up any admitted job (live or retired) by its dense id. *)

val submit : live -> at:float -> Model.App.t -> State.job
(** Admit an arrival at model time [at] (clamped to [live_now] if it is
    in the past).  Pending completion predictions due before [at] fire
    first; then the policy decides whether to re-solve. *)

val cancel : live -> at:float -> id:int -> bool
(** Cancel job [id] at model time [at].  Completions due before [at]
    fire first, so a job that finishes before its departure arrives is
    not cancelled — exactly the time-ordered replay semantics.  Returns
    [false] (and changes nothing) when the job is unknown or already
    retired. *)

val advance : live -> to_:float -> unit
(** Move model time forward to [to_] (clamped to [live_now]), firing due
    completion predictions and integrating progress.  No policy event is
    generated by the advance itself. *)

val drain_step : live -> bool
(** Run the engine dry, then — if jobs remain — force one re-solve and
    re-predict completions.  Returns whether live jobs remain; callers
    loop until [false] (cooperative deadline checks go between steps,
    which is how the daemon bounds its drain). *)

val drain : live -> unit
(** {!drain_step} until every admitted job has completed or been
    cancelled. *)

val live_report : live -> report
(** Metrics and retired jobs so far.  Valid mid-run: [makespan] is the
    current model time and response/stretch statistics cover the jobs
    completed so far.  After a {!live_restore}, [jobs] lists only the
    jobs retired since the restore, but [metrics] covers the whole
    logical run: pre-checkpoint retirements enter through the restored
    sufficient statistics (exact left-fold prefixes, so the merged
    means and maxima equal the uncrashed run's bit for bit). *)

(** {2 Checkpoint / restore}

    {!live_persist} freezes a live instance into a plain {!persist}
    value — every live job with its exact progress and allocation, the
    engine clock, the pending completion-prediction instant, the policy
    and re-solver counters, and the retired-job sufficient statistics.
    {!live_restore} rebuilds a live instance from it that evolves {e bit-
    identically} to the original under any subsequent event sequence:
    floats round-trip through 17-significant-digit text, the completion
    prediction is re-armed at its exact recorded absolute time (not
    recomputed, which could drift by ulps), and allocations are
    reinstalled verbatim without re-solving.  The warm {e seed} (the
    previous makespan and demand scale) is carried, so the first
    post-restore re-solve predicts from exactly the values the uncrashed
    run would have used; the carried sort permutation is not (it only
    buys adaptivity — only [partition_ops] can differ from the uncrashed
    run).
    [Serve.Snapshot] serializes this value to the checksummed snapshot
    file behind journal compaction. *)

type pjob = {
  pj_id : int;
  pj_app : Model.App.t;
  pj_arrival : float;
  pj_remaining : float;
  pj_procs : float;
  pj_cache : float;
  pj_allocated : bool;
  pj_epoch : int;
  pj_migrations : int;
}
(** One live job as checkpointed ([alone_time] is recomputed on restore —
    it is a pure function of the app and platform). *)

type persist = {
  p_time : float;             (** Engine/model clock. *)
  p_next_id : int;            (** Jobs ever admitted. *)
  p_busy : float;             (** Busy-processor integral. *)
  p_pending : float option;   (** Absolute time of the scheduled
                                  completion prediction, if any. *)
  p_last_solve : float;
  p_last_k : float option;
  p_prev_d : float;           (** Residual demand scale at the last
                                  solve — with [p_last_k], the warm
                                  seed of the first post-restore
                                  re-solve (0 when none ran). *)
  p_events_handled : int;
  p_events_since : int;
  p_forced : int;
  p_migrations : int;
  p_resolves : int;           (** The allocation epoch. *)
  p_solver_iters : int;
  p_partition_ops : int;
  p_warm_hits : int;
  p_cold_fallbacks : int;
  p_completed : int;          (** Retired-job sufficient statistics: *)
  p_cancelled : int;          (** counts, response/stretch left-fold *)
  p_resp_sum : float;         (** sums and maxima ([neg_infinity] when
                                  nothing completed yet). *)
  p_resp_max : float;
  p_str_sum : float;
  p_str_max : float;
  p_jobs : pjob list;         (** Live jobs, id order. *)
}

val live_persist : live -> persist
(** Freeze the instance's full logical state.  Cheap — O(live jobs) — and
    read-only; the instance keeps running. *)

val live_restore :
  ?config:config -> ?pool:Exec.Pool.t -> ?shard_min:int ->
  ?listener:(notice -> unit) -> platform:Model.Platform.t ->
  persist -> live
(** Rebuild a live instance from a checkpoint (see above for the
    bit-identical-evolution guarantee).  [config], [listener] and the
    sharding [pool] are supplied fresh — they are process-level
    concerns, not model state.
    @raise Invalid_argument on an invalid [config.policy] or a malformed
    checkpoint (out-of-order job ids, negative clock). *)

val run :
  ?config:config -> ?pool:Exec.Pool.t -> ?shard_min:int ->
  platform:Model.Platform.t -> Workload_stream.t -> report
(** Replay the stream to completion through a fresh live instance (every
    admitted job either completes or is cancelled).  Deterministic: a
    pure function of the platform, stream and config — with or without a
    sharding [pool] (see {!live_create}). *)
