(** The event-driven online co-scheduling service (the tent of the
    subsystem).

    Arrivals and departures from a {!Workload_stream} and predicted job
    completions are driven through {!Simulator.Engine}; at each event the
    live state integrates progress ({!State.advance}), then the
    {!Policy} decides whether to re-solve.  A re-solve treats the
    residual work as a static instance of the paper's problem and runs
    the DominantMinRatio pipeline through {!Incremental} — warm-started
    ([Warm]) or from scratch ([Cold], the baseline the warm counters are
    measured against).

    Completion handling exploits the structure of equalised schedules:
    all applications sharing a solve finish together, so a single
    next-completion event per allocation epoch sweeps the whole cohort
    (jobs within a 1e-9 remaining-work fraction), and re-solve epochs
    make superseded predictions inert.

    Whatever the policy decides, a re-solve is forced when jobs are
    queued and nothing is running — deferral policies trade response
    time for migrations, but never starve.

    With {!Obs.Probe.on}, every arrival/departure/completion opens a
    [service.*] tracing span and records per-event wall time plus
    queue-depth and live-job gauges; probes off, the handlers pay one
    flag test and the served schedule is bit-identical. *)

type config = {
  policy : Policy.t;
  mode : Incremental.mode;
  validate : bool;
      (** Check processor/cache conservation after every event and
          re-solve (raises [Failure] on violation). *)
  record : bool;
      (** Keep a per-re-solve allocation snapshot (for the warm-vs-cold
          equivalence property). *)
}

val default_config : config
(** [Every_event], [Warm], no validation, no recording. *)

type snapshot = {
  time : float;
  job_ids : int array;     (** Live jobs at the re-solve, arrival order. *)
  procs : float array;
  cache : float array;
  k : float;               (** Equalised makespan of the re-solve. *)
}

type report = {
  metrics : Metrics.t;
  jobs : State.job list;   (** All retired jobs, retirement order. *)
  snapshots : snapshot list;  (** Oldest first; empty unless [record]. *)
}

val run :
  ?config:config -> platform:Model.Platform.t -> Workload_stream.t -> report
(** Run the stream to completion (every admitted job either completes or
    is cancelled).  Deterministic: a pure function of the platform,
    stream and config. *)
