(** Warm-started incremental re-solvers.

    A re-solve has two stages: choose the dominant cache partition
    (Algorithm 1 with the MinRatio criterion — the paper's representative
    heuristic), then equalise completion times by bisecting on the
    makespan [K].  Both stages admit warm starts across consecutive
    events:

    - {b Partition.}  Algorithm 1 evicts the minimum-ratio application
      until dominance holds; since the per-application ratio does not
      depend on the chosen subset, its result is exactly the maximal
      dominant {e suffix} of the applications sorted by ratio (dominance
      of a suffix reduces to its first member's ratio exceeding the
      suffix weight sum, and [ratio - suffix sum] is monotone along the
      sorted order).  The warm path therefore computes each ratio once,
      sorts, and walks the suffix boundary from its previous position —
      [O(n log n)] against the cold rebuild's [O(n^2)] eviction loop, and
      provably the same subset (ties broken by index in both).

      The sort itself is warm too: ratios, weights, the sorted
      permutation and the suffix weight sums persist in {!t} as unboxed
      parallel arrays, updated in place per event.  Consecutive events
      leave the permutation nearly sorted (progress drifts ratios
      smoothly; an arrival or departure perturbs one position), so an
      adaptive insertion sort runs in [O(n + inversions)] with zero
      allocation, where the previous implementation rebuilt and
      [Array.sort]ed a boxed entry array on every event.

    - {b Makespan.}  The previous [K], aged by the time elapsed since the
      last solve, seeds a tight bisection bracket
      ({!Sched.Equalize.solve_makespan} with [~warm]) in place of the
      cold bracket spanning the whole feasible range.

    All work is counted: [partition_ops] increments per weight/ratio/
    dominance evaluation, [solver_iters] per makespan-objective
    evaluation, so warm-vs-cold savings are measured, not asserted.
    With {!Obs.Probe.on}, every solve also opens an [online.resolve]
    tracing span and feeds the [incremental.*] metrics (resolves,
    warm hits vs cold fallbacks, partition ops, solver iterations). *)

type counters = {
  mutable solver_iters : int;
      (** Evaluations of the processor-demand objective inside the
          makespan bisection. *)
  mutable partition_ops : int;
      (** Per-application weight/ratio evaluations and dominance checks
          inside partition construction. *)
  mutable resolves : int;  (** Calls to {!solve}. *)
  mutable warm_hits : int;
      (** Warm-mode solves whose bisection was seeded by an aged
          previous makespan. *)
  mutable cold_fallbacks : int;
      (** Warm-mode solves that fell back to the cold bracket (no
          previous makespan, or it aged to nothing). *)
}

val fresh_counters : unit -> counters
(** All-zero counters. *)

type t
(** Warm state: the previous makespan and suffix-boundary position, the
    persistent partition arrays (ratios, weights, sorted permutation,
    suffix sums), a solver {!Sched.Workspace.t}, and the {!counters}. *)

val create : unit -> t
(** Cold warm-state with {!fresh_counters}. *)

val counters : t -> counters
(** The live counters (shared, mutated by every solve). *)

val invalidate : t -> unit
(** Forget the warm state — the next solve runs cold and the carried
    permutation is rebuilt from identity — keeping counters. *)

val prev_demand : t -> float
(** The residual parallel demand [sum (1-s_i) c_i] recorded by the last
    {!solve_state} (0 when none ran) — checkpointed alongside the last
    makespan so a restored service seeds its first re-solve exactly as
    the uncrashed run would. *)

val reseed : t -> prev_k:float option -> prev_d:float -> unit
(** Install a checkpointed warm seed (previous makespan and demand
    scale).  The carried permutation is {e not} restored — it only buys
    sort adaptivity; the partition result is exact either way. *)

val cold_partition :
  ?counters:counters -> platform:Model.Platform.t ->
  Model.App.t array -> Theory.Dominant.subset
(** The cold baseline: [Partition_builder.build Dominant MinRatio]
    itself, with the builder's [?ops] hook wired into [partition_ops] —
    the accounting is the real eviction loop's, not a replica's.
    (MinRatio consumes no randomness, so the required rng is a shared
    dummy.) *)

val warm_partition :
  t -> platform:Model.Platform.t -> apps:Model.App.t array ->
  Theory.Dominant.subset
(** The sorted-suffix construction described above, boundary seeded from
    the previous solve.  Returns the same subset as {!cold_partition}
    (modulo exact ratio ties, which have measure zero for generated
    workloads). *)

type solution = {
  schedule : Model.Schedule.t;
  k : float;                      (** The equalised makespan. *)
  subset : Theory.Dominant.subset;(** Applications granted cache. *)
}

type mode = Warm | Cold

val solve :
  t -> mode:mode -> elapsed:float -> platform:Model.Platform.t ->
  apps:Model.App.t array -> solution
(** One full re-solve of the residual instance.  [elapsed] is the time
    since the previous solve (it ages the warm makespan seed: with no
    churn the equalised horizon shrinks by exactly the elapsed time).
    [Cold] ignores and does not consume warm state, but still counts its
    work in the same counters.
    @raise Invalid_argument on an empty instance. *)

val solve_state :
  t -> ?pool:Exec.Pool.t -> ?shard_min:int -> elapsed:float ->
  state:State.t -> unit -> float * int
(** The warm re-solve on {!State}'s columns directly — the service's hot
    path.  Reads the live set through {!State.view} (no per-job
    [Model.App.t] materialization), runs the same partition repair and
    capped water-filling as {!solve}, roots the makespan with
    {!Sched.Equalize.solve_cols} (Illinois refinement) seeded by the
    {e predicted} residual makespan [prev_k * D / prev_D] (where [D] is
    the residual parallel demand [sum (1-s_i) c_i]), and installs the
    allocations through {!State.apply_view}.  Returns [(k, migrations)].

    The three per-position passes (weight/ratio, work costs, processor
    shares) shard across [pool] when it is given, has workers, and
    [n >= shard_min] (default 4096); every shard writes disjoint
    positions and all reductions stay sequential, so the result is
    bit-identical to the sequential path for any pool size and chunking
    (QCheck-enforced under churn).  Counts work in the same {!counters}
    as {!solve} and updates the same warm state ([elapsed] ages the seed
    on the fallback path when no demand scale is carried yet).
    @raise Invalid_argument on an empty live set. *)
