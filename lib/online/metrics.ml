type t = {
  jobs : int;
  completed : int;
  cancelled : int;
  events : int;
  resolves : int;
  forced_resolves : int;
  migrations : int;
  solver_iters : int;
  partition_ops : int;
  warm_hits : int;
  cold_fallbacks : int;
  makespan : float;
  mean_response : float;
  max_response : float;
  mean_stretch : float;
  max_stretch : float;
  utilization : float;
}

let render ~label t =
  let table = Util.Table.create ~aligns:[ Util.Table.Left; Util.Table.Right ]
      [ "metric"; label ]
  in
  let add_int name v = Util.Table.add_row table [ name; string_of_int v ] in
  let add_float name v =
    Util.Table.add_row table [ name; Printf.sprintf "%.4g" v ]
  in
  add_int "jobs" t.jobs;
  add_int "completed" t.completed;
  add_int "cancelled" t.cancelled;
  add_int "events" t.events;
  add_int "resolves" t.resolves;
  add_int "forced resolves" t.forced_resolves;
  add_int "migrations" t.migrations;
  add_int "solver iters" t.solver_iters;
  add_int "partition ops" t.partition_ops;
  add_int "warm hits" t.warm_hits;
  add_int "cold fallbacks" t.cold_fallbacks;
  add_float "makespan" t.makespan;
  add_float "mean response" t.mean_response;
  add_float "max response" t.max_response;
  add_float "mean stretch" t.mean_stretch;
  add_float "max stretch" t.max_stretch;
  add_float "utilization" t.utilization;
  Util.Table.to_string table

let to_json t =
  let f = Printf.sprintf "%.17g" in
  String.concat ""
    [
      "{";
      Printf.sprintf "\"jobs\":%d," t.jobs;
      Printf.sprintf "\"completed\":%d," t.completed;
      Printf.sprintf "\"cancelled\":%d," t.cancelled;
      Printf.sprintf "\"events\":%d," t.events;
      Printf.sprintf "\"resolves\":%d," t.resolves;
      Printf.sprintf "\"forced_resolves\":%d," t.forced_resolves;
      Printf.sprintf "\"migrations\":%d," t.migrations;
      Printf.sprintf "\"solver_iters\":%d," t.solver_iters;
      Printf.sprintf "\"partition_ops\":%d," t.partition_ops;
      Printf.sprintf "\"warm_hits\":%d," t.warm_hits;
      Printf.sprintf "\"cold_fallbacks\":%d," t.cold_fallbacks;
      Printf.sprintf "\"makespan\":%s," (f t.makespan);
      Printf.sprintf "\"mean_response\":%s," (f t.mean_response);
      Printf.sprintf "\"max_response\":%s," (f t.max_response);
      Printf.sprintf "\"mean_stretch\":%s," (f t.mean_stretch);
      Printf.sprintf "\"max_stretch\":%s," (f t.max_stretch);
      Printf.sprintf "\"utilization\":%s" (f t.utilization);
      "}";
    ]
