(** Deterministic arrival/departure streams for the online service.

    The static problem of the paper schedules one fixed application set;
    the online service (its Section 1 in-situ motivation, and the
    high-throughput setting of Aupy et al.) faces a {e stream}: analysis
    applications arrive over time, run to completion under the current
    co-schedule, and may be cancelled before finishing.  A stream is a
    time-sorted list of such events, either replayed from an explicit
    trace or generated — all randomness flows through {!Util.Rng}, so
    every stream is a pure function of its seed. *)

type kind =
  | Arrival of Model.App.t
      (** A new application joins the system and waits to be scheduled. *)
  | Departure of int
      (** The [i]-th arrival (0-based, in stream order) is cancelled; a
          no-op at runtime if that job already completed. *)

type event = { time : float; kind : kind }

type t
(** A validated stream: events in nondecreasing time order, finite
    nonnegative times, departures referencing earlier arrivals. *)

val of_events : event list -> t
(** Validate and pack a replay trace.
    @raise Invalid_argument on NaN/negative/decreasing times or on a
    departure whose index is not an earlier arrival. *)

val events : t -> event list
(** The events, in time order. *)

val arrivals : t -> int
(** Number of arrival events. *)

val length : t -> int
(** Total number of events. *)

val horizon : t -> float
(** Time of the last event; [0.] for an empty stream. *)

val poisson : rng:Util.Rng.t -> rate:float -> apps:Model.App.t array -> t
(** Poisson arrival process: application [apps.(i)] arrives after the
    [i]-th exponential inter-arrival gap of the given [rate] (arrivals
    per unit model time).  No departures.
    @raise Invalid_argument on a nonpositive or non-finite rate. *)

val poisson_load :
  rng:Util.Rng.t -> platform:Model.Platform.t -> load:float ->
  dataset:Model.Workload.dataset -> int -> t
(** [poisson_load ~rng ~platform ~load ~dataset n] generates [n]
    applications from [dataset] and arrival times at the rate that keeps
    roughly [load] jobs in the system if each ran alone on the full
    platform: [rate = load / mean alone-time].  The usual entry point of
    the CLI and benches; [load] must be positive and finite.
    @raise Invalid_argument on a bad [load] or [n < 0]. *)

val of_arrivals : apps:Model.App.t array -> float array -> t
(** [of_arrivals ~apps times] pairs [apps.(i)] with arrival instant
    [times.(i)] (no departures).
    @raise Invalid_argument if lengths differ or the times are not
    nondecreasing, finite and nonnegative. *)

val scenario :
  rng:Util.Rng.t -> scenario:Stats.Scenario.t -> apps:Model.App.t array -> t
(** Arrival times drawn from a {!Stats.Scenario} process, in raw model
    time units (no load normalisation) — one arrival per application, in
    order.  [scenario ~rng ~scenario:(Renewal (Exponential {rate}))
    ~apps] reproduces {!poisson} draw-for-draw. *)

val sized :
  rng:Util.Rng.t -> sizes:Stats.Dist.t -> dataset:Model.Workload.dataset ->
  int -> Model.App.t array
(** [sized ~rng ~sizes ~dataset n] draws [n] applications from [dataset]
    and replaces each work amount [w] with a draw from [sizes] — the
    heavy-tailed job-size generator beside NPB-SYNTH.  Size draws are in
    absolute operation counts (the NPB range is 1e8..1e12, so e.g.
    [pareto:a=1.1,xm=1e9] is a natural heavy-tail choice).
    @raise Invalid_argument on an invalid distribution, a nonpositive
    sampled size, or [n < 0]. *)

val scenario_load :
  rng:Util.Rng.t -> platform:Model.Platform.t -> ?sizes:Stats.Dist.t ->
  scenario:Stats.Scenario.t -> dataset:Model.Workload.dataset -> int -> t
(** The scenario counterpart of {!poisson_load}: generates [n]
    applications (work overridden by [sizes] when given), then scales the
    scenario's arrival axis by the mean alone-time of the generated set,
    so scenario rates are in jobs per mean alone-time and
    [poisson:rate=4] is comparable to [~load:4.].
    @raise Invalid_argument on invalid specs or [n < 0]. *)
