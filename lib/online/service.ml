type config = {
  policy : Policy.t;
  mode : Incremental.mode;
  validate : bool;
  record : bool;
}

let default_config =
  { policy = Policy.Every_event; mode = Incremental.Warm; validate = false;
    record = false }

type snapshot = {
  time : float;
  job_ids : int array;
  procs : float array;
  cache : float array;
  k : float;
}

type report = {
  metrics : Metrics.t;
  jobs : State.job list;
  snapshots : snapshot list;
}

type notice =
  | Resolved of { time : float; epoch : int; k : float }
  | Completed of { time : float; id : int }

(* Jobs within this remaining-work fraction of done are completed by the
   same sweep: equalised cohorts finish within the makespan bisection
   tolerance (~1e-12 relative), far inside this margin, while genuinely
   unfinished jobs are far outside it. *)
let completion_eps = 1e-9

let m_events =
  Obs.Metrics.counter ~help:"events handled by the online service"
    "service.events"

let m_event_us =
  Obs.Metrics.histogram ~help:"wall time per event handled, in microseconds"
    "service.event_us"

let m_queue_depth =
  Obs.Metrics.gauge ~help:"live jobs holding zero processors after the last event"
    "service.queue_depth"

let m_live_jobs =
  Obs.Metrics.gauge ~help:"live jobs after the last event" "service.live_jobs"

(* Retired-job statistics carried over a {!live_restore}: the retired
   jobs themselves are not reconstructed (replay is O(live jobs), the
   whole point of snapshotting), so their contribution to the report
   enters as sufficient statistics.  The sums are the exact left-fold
   prefixes of the uncrashed run's folds, so continuing them job by job
   reproduces the uncrashed metrics bit for bit. *)
type stats_basis = {
  b_completed : int;
  b_cancelled : int;
  b_resp_sum : float;
  b_resp_max : float;  (* neg_infinity when no completions yet *)
  b_str_sum : float;
  b_str_max : float;
}

(* The stepwise core.  [run] below and the [Serve] daemon both drive this
   record, so an offline replay and a served stream of the same events
   are the same code path (the daemon-vs-offline equivalence property in
   test/test_serve.ml holds by construction, and is still checked). *)
type live = {
  config : config;
  platform : Model.Platform.t;
  state : State.t;
  engine : Simulator.Engine.t;
  inc : Incremental.t;
  pool : Exec.Pool.t option;
      (* shared domain pool for sharded re-solve passes, if any *)
  shard_min : int;  (* live-set size below which re-solves stay sequential *)
  jobs_by_id : (int, State.job) Hashtbl.t;
  listener : (notice -> unit) option;
  mutable events_since : int;
  mutable events_handled : int;
  mutable last_solve : float;
  mutable forced : int;
  mutable migrations : int;
  mutable snapshots_rev : snapshot list;
  mutable pred_epoch : int;       (* completion-prediction generation *)
  mutable pred_at : float option; (* absolute completion time of the
                                     current prediction, if scheduled *)
  mutable last_k : float option;  (* equalised makespan of the last solve *)
  mutable basis : stats_basis option;  (* Some after a live_restore *)
}

let default_shard_min = 4096

let live_create ?(config = default_config) ?pool ?(shard_min = default_shard_min)
    ?listener ~platform () =
  Policy.validate config.policy;
  {
    config;
    platform;
    state = State.create platform;
    engine = Simulator.Engine.create ();
    inc = Incremental.create ();
    pool;
    shard_min;
    jobs_by_id = Hashtbl.create 64;
    listener;
    events_since = 0;
    events_handled = 0;
    last_solve = 0.;
    forced = 0;
    migrations = 0;
    snapshots_rev = [];
    pred_epoch = 0;
    pred_at = None;
    last_k = None;
    basis = None;
  }

let live_now lv = Simulator.Engine.now lv.engine

let live_epoch lv = (Incremental.counters lv.inc).Incremental.resolves

let live_state lv = lv.state

let last_makespan lv = lv.last_k

let find_job lv id = Hashtbl.find_opt lv.jobs_by_id id

let notify lv n = match lv.listener with None -> () | Some f -> f n

(* Cheap estimate of the relative makespan damage of not re-solving:
   idle platform fraction plus the queued share of live work.  The idle
   fraction is floored at 1e-9 so that the one-ulp residue of the
   post-solve processor rescale reads as exactly zero — the Threshold
   decision must not depend on bisection noise (it would split warm and
   cold runs on razor-edge ties). *)
let degradation lv () =
  let p = lv.platform.Model.Platform.p in
  let used, queued_w, total_w = State.demand_summary lv.state in
  let idle =
    let frac = (p -. used) /. p in
    if frac > 1e-9 then frac else 0.
  in
  idle +. (if total_w > 0. then queued_w /. total_w else 0.)

let resolve lv ~is_forced () =
  if State.live_count lv.state > 0 then begin
    let now = Simulator.Engine.now lv.engine in
    let elapsed = now -. lv.last_solve in
    let k, migrations =
      match lv.config.mode with
      | Incremental.Warm ->
        (* Columnar hot path: no per-job materialization, sharded over
           the pool when the live set is large enough. *)
        Incremental.solve_state lv.inc ?pool:lv.pool ~shard_min:lv.shard_min
          ~elapsed ~state:lv.state ()
      | Incremental.Cold ->
        let jobs = State.live lv.state in
        let apps = Array.map State.remaining_app jobs in
        let sol =
          Incremental.solve lv.inc ~mode:Incremental.Cold ~elapsed
            ~platform:lv.platform ~apps
        in
        ( sol.Incremental.k,
          State.apply lv.state jobs sol.Incremental.schedule.Model.Schedule.allocs )
    in
    lv.migrations <- lv.migrations + migrations;
    if is_forced then lv.forced <- lv.forced + 1;
    lv.events_since <- 0;
    lv.last_solve <- now;
    lv.last_k <- Some k;
    if lv.config.record then begin
      let jobs = State.live lv.state in
      lv.snapshots_rev <-
        {
          time = now;
          job_ids = Array.map State.id jobs;
          procs = Array.map State.procs jobs;
          cache = Array.map State.cache jobs;
          k;
        }
        :: lv.snapshots_rev
    end;
    if lv.config.validate then State.assert_conservation lv.state;
    notify lv (Resolved { time = now; epoch = live_epoch lv; k })
  end

let decide lv =
  if State.live_count lv.state = 0 then ()
  else begin
    let queued = State.queued lv.state > 0 in
    let running = State.running lv.state > 0 in
    if queued && not running then resolve lv ~is_forced:true ()
    else if
      Policy.should_resolve lv.config.policy ~events_pending:lv.events_since
        ~degradation:(degradation lv)
    then resolve lv ~is_forced:false ()
  end

(* Per-event probe epilogue: wall time into the latency histogram, queue
   depth and live-job gauges from the post-event state.  Called only when
   probes are on; with probes off each handler pays one flag test and two
   constant bindings. *)
let finish_event lv sp t0 =
  Obs.Metrics.incr m_events;
  Obs.Metrics.observe m_event_us (Obs.Clock.elapsed_us ~since:t0);
  Obs.Metrics.set m_queue_depth (float_of_int (State.queued lv.state));
  Obs.Metrics.set m_live_jobs (float_of_int (State.live_count lv.state));
  Obs.Span.stop sp

(* One next-completion event per allocation epoch: equalised cohorts
   finish together, so the earliest predicted completion sweeps every job
   that is done to within [completion_eps].  Superseded predictions carry
   a stale epoch and are ignored when they fire. *)
let rec schedule_next_completion lv =
  lv.pred_epoch <- lv.pred_epoch + 1;
  let e = lv.pred_epoch in
  let next = State.min_remaining_time lv.state in
  if next < infinity then begin
    let at = Simulator.Engine.now lv.engine +. next in
    lv.pred_at <- Some at;
    Simulator.Engine.schedule lv.engine ~at (fun eng -> on_completion lv eng e)
  end
  else lv.pred_at <- None

and on_completion lv eng e =
  if e = lv.pred_epoch then begin
    let on = Obs.Probe.on () in
    let sp =
      if on then Obs.Span.start "service.completion" else Obs.Span.null
    in
    let t0 = if on then Obs.Clock.now_ns () else 0L in
    let now = Simulator.Engine.now eng in
    State.advance lv.state ~to_:now;
    State.iter_live lv.state (fun j ->
        if State.procs j > 0. && State.remaining j <= completion_eps then begin
          State.complete lv.state j;
          notify lv (Completed { time = now; id = State.id j })
        end);
    lv.events_handled <- lv.events_handled + 1;
    lv.events_since <- lv.events_since + 1;
    after_event lv;
    if on then finish_event lv sp t0
  end

and after_event lv =
  if lv.config.validate then State.assert_conservation lv.state;
  decide lv;
  schedule_next_completion lv

(* Advance the engine (firing due completion predictions, each of which
   integrates progress and may re-solve) and then the state clock to
   [to_].  Times in the past clamp to now: the daemon may observe a
   request timestamped slightly behind its model clock. *)
let advance lv ~to_ =
  let to_ = Float.max to_ (Simulator.Engine.now lv.engine) in
  Simulator.Engine.advance_to lv.engine ~to_;
  State.advance lv.state ~to_

let submit lv ~at app =
  let at = Float.max at (Simulator.Engine.now lv.engine) in
  Simulator.Engine.advance_to lv.engine ~to_:at;
  let on = Obs.Probe.on () in
  let sp = if on then Obs.Span.start "service.arrival" else Obs.Span.null in
  let t0 = if on then Obs.Clock.now_ns () else 0L in
  State.advance lv.state ~to_:at;
  let job = State.add lv.state ~app in
  Hashtbl.replace lv.jobs_by_id (State.id job) job;
  lv.events_handled <- lv.events_handled + 1;
  lv.events_since <- lv.events_since + 1;
  after_event lv;
  if on then finish_event lv sp t0;
  job

let cancel lv ~at ~id =
  let at = Float.max at (Simulator.Engine.now lv.engine) in
  (* Completions due before the cancellation fire first, exactly as they
     would in a time-ordered replay — a job that finishes before its
     departure arrives is not cancelled. *)
  Simulator.Engine.advance_to lv.engine ~to_:at;
  match Hashtbl.find_opt lv.jobs_by_id id with
  | Some job when State.finish job = None && not (State.cancelled job) ->
    let on = Obs.Probe.on () in
    let sp = if on then Obs.Span.start "service.departure" else Obs.Span.null in
    let t0 = if on then Obs.Clock.now_ns () else 0L in
    State.advance lv.state ~to_:at;
    State.cancel lv.state job;
    lv.events_handled <- lv.events_handled + 1;
    lv.events_since <- lv.events_since + 1;
    after_event lv;
    if on then finish_event lv sp t0;
    true
  | _ -> false

let drain_step lv =
  Simulator.Engine.run lv.engine;
  if State.live_count lv.state = 0 then false
  else begin
    (* A policy can leave jobs queued after the input stops (it never
       triggered and nothing was running to force it). *)
    resolve lv ~is_forced:true ();
    schedule_next_completion lv;
    true
  end

let drain lv =
  while drain_step lv do
    ()
  done

let zero_basis =
  {
    b_completed = 0;
    b_cancelled = 0;
    b_resp_sum = 0.;
    b_resp_max = neg_infinity;
    b_str_sum = 0.;
    b_str_max = neg_infinity;
  }

(* Retired-job statistics: the restore basis continued by the left fold
   over the jobs retired since.  With the zero basis (no restore) this is
   the same addition sequence the pre-snapshot code ran over its arrays,
   so the refactor is bit-identical for fresh instances; after a restore
   the basis holds exact prefix sums, so the continued folds equal the
   uncrashed run's bit for bit. *)
let merged_stats lv =
  let b = Option.value ~default:zero_basis lv.basis in
  let finished = State.finished lv.state in
  List.fold_left
    (fun acc j ->
      match State.finish j with
      | Some f ->
        let resp = f -. State.arrival j in
        let str = resp /. State.alone_time j in
        {
          b_completed = acc.b_completed + 1;
          b_cancelled = acc.b_cancelled;
          b_resp_sum = acc.b_resp_sum +. resp;
          b_resp_max = Float.max acc.b_resp_max resp;
          b_str_sum = acc.b_str_sum +. str;
          b_str_max = Float.max acc.b_str_max str;
        }
      | None -> { acc with b_cancelled = acc.b_cancelled + 1 })
    b finished

let live_report lv =
  let finished = State.finished lv.state in
  let s = merged_stats lv in
  let basis_retired =
    match lv.basis with
    | None -> 0
    | Some b -> b.b_completed + b.b_cancelled
  in
  let makespan = State.now lv.state in
  let c = Incremental.counters lv.inc in
  let metrics =
    {
      Metrics.jobs = basis_retired + Hashtbl.length lv.jobs_by_id;
      completed = s.b_completed;
      cancelled = s.b_cancelled;
      events = lv.events_handled;
      resolves = c.Incremental.resolves;
      forced_resolves = lv.forced;
      migrations = lv.migrations;
      solver_iters = c.Incremental.solver_iters;
      partition_ops = c.Incremental.partition_ops;
      warm_hits = c.Incremental.warm_hits;
      cold_fallbacks = c.Incremental.cold_fallbacks;
      makespan;
      mean_response =
        (if s.b_completed = 0 then 0.
         else s.b_resp_sum /. float_of_int s.b_completed);
      max_response = (if s.b_completed = 0 then 0. else s.b_resp_max);
      mean_stretch =
        (if s.b_completed = 0 then 0.
         else s.b_str_sum /. float_of_int s.b_completed);
      max_stretch = (if s.b_completed = 0 then 0. else s.b_str_max);
      utilization =
        (if makespan > 0. then
           State.busy_integral lv.state
           /. (lv.platform.Model.Platform.p *. makespan)
         else 0.);
    }
  in
  { metrics; jobs = finished; snapshots = List.rev lv.snapshots_rev }

(* --- checkpoint / restore ---------------------------------------------- *)

type pjob = {
  pj_id : int;
  pj_app : Model.App.t;
  pj_arrival : float;
  pj_remaining : float;
  pj_procs : float;
  pj_cache : float;
  pj_allocated : bool;
  pj_epoch : int;
  pj_migrations : int;
}

type persist = {
  p_time : float;
  p_next_id : int;
  p_busy : float;
  p_pending : float option;
  p_last_solve : float;
  p_last_k : float option;
  p_prev_d : float;
  p_events_handled : int;
  p_events_since : int;
  p_forced : int;
  p_migrations : int;
  p_resolves : int;
  p_solver_iters : int;
  p_partition_ops : int;
  p_warm_hits : int;
  p_cold_fallbacks : int;
  p_completed : int;
  p_cancelled : int;
  p_resp_sum : float;
  p_resp_max : float;
  p_str_sum : float;
  p_str_max : float;
  p_jobs : pjob list;
}

let live_persist lv =
  let s = merged_stats lv in
  let c = Incremental.counters lv.inc in
  let jobs =
    Array.to_list
      (Array.map
         (fun j ->
           {
             pj_id = State.id j;
             pj_app = State.app j;
             pj_arrival = State.arrival j;
             pj_remaining = State.remaining j;
             pj_procs = State.procs j;
             pj_cache = State.cache j;
             pj_allocated = State.allocated j;
             pj_epoch = State.epoch j;
             pj_migrations = State.migrations j;
           })
         (State.live lv.state))
  in
  {
    p_time = Simulator.Engine.now lv.engine;
    p_next_id = State.next_id lv.state;
    p_busy = State.busy_integral lv.state;
    p_pending = lv.pred_at;
    p_last_solve = lv.last_solve;
    p_last_k = lv.last_k;
    p_prev_d = Incremental.prev_demand lv.inc;
    p_events_handled = lv.events_handled;
    p_events_since = lv.events_since;
    p_forced = lv.forced;
    p_migrations = lv.migrations;
    p_resolves = c.Incremental.resolves;
    p_solver_iters = c.Incremental.solver_iters;
    p_partition_ops = c.Incremental.partition_ops;
    p_warm_hits = c.Incremental.warm_hits;
    p_cold_fallbacks = c.Incremental.cold_fallbacks;
    p_completed = s.b_completed;
    p_cancelled = s.b_cancelled;
    p_resp_sum = s.b_resp_sum;
    p_resp_max = s.b_resp_max;
    p_str_sum = s.b_str_sum;
    p_str_max = s.b_str_max;
    p_jobs = jobs;
  }

let live_restore ?(config = default_config) ?pool
    ?(shard_min = default_shard_min) ?listener ~platform p =
  Policy.validate config.policy;
  let lv =
    {
      config;
      platform;
      state = State.create platform;
      engine = Simulator.Engine.create ();
      inc = Incremental.create ();
      pool;
      shard_min;
      jobs_by_id = Hashtbl.create 64;
      listener;
      events_since = p.p_events_since;
      events_handled = p.p_events_handled;
      last_solve = p.p_last_solve;
      forced = p.p_forced;
      migrations = p.p_migrations;
      snapshots_rev = [];
      pred_epoch = 0;
      pred_at = None;
      last_k = p.p_last_k;
      basis =
        Some
          {
            b_completed = p.p_completed;
            b_cancelled = p.p_cancelled;
            b_resp_sum = p.p_resp_sum;
            b_resp_max = p.p_resp_max;
            b_str_sum = p.p_str_sum;
            b_str_max = p.p_str_max;
          };
    }
  in
  Simulator.Engine.advance_to lv.engine ~to_:p.p_time;
  State.restore lv.state ~clock:p.p_time ~next_id:p.p_next_id
    ~busy:p.p_busy;
  List.iter
    (fun pj ->
      let job =
        State.inject lv.state ~id:pj.pj_id ~app:pj.pj_app
          ~arrival:pj.pj_arrival ~remaining:pj.pj_remaining
          ~procs:pj.pj_procs ~cache:pj.pj_cache ~allocated:pj.pj_allocated
          ~epoch:pj.pj_epoch ~migrations:pj.pj_migrations
      in
      Hashtbl.replace lv.jobs_by_id pj.pj_id job)
    p.p_jobs;
  let c = Incremental.counters lv.inc in
  c.Incremental.resolves <- p.p_resolves;
  c.Incremental.solver_iters <- p.p_solver_iters;
  c.Incremental.partition_ops <- p.p_partition_ops;
  c.Incremental.warm_hits <- p.p_warm_hits;
  c.Incremental.cold_fallbacks <- p.p_cold_fallbacks;
  (* Re-arm the warm seed: the first post-restore re-solve must predict
     from the same previous makespan and demand scale as the uncrashed
     run, or its Illinois refinement would land ulps away and break the
     byte-identical recovery property. *)
  Incremental.reseed lv.inc ~prev_k:p.p_last_k ~prev_d:p.p_prev_d;
  (* Re-arm the completion prediction at its exact recorded absolute
     time.  Recomputing [now + remaining_time] here would land within
     ulps of the original but not necessarily on it; carrying the
     scheduled instant through the checkpoint keeps the post-restore
     event sequence — and therefore every finish timestamp and
     allocation — bit-identical to the uncrashed run. *)
  (match p.p_pending with
  | Some at when p.p_jobs <> [] ->
    lv.pred_epoch <- lv.pred_epoch + 1;
    let e = lv.pred_epoch in
    lv.pred_at <- Some at;
    Simulator.Engine.schedule lv.engine ~at (fun eng -> on_completion lv eng e)
  | _ -> ());
  lv

let run ?(config = default_config) ?pool ?shard_min ~platform stream =
  let lv = live_create ~config ?pool ?shard_min ~platform () in
  List.iter
    (fun { Workload_stream.time; kind } ->
      match kind with
      | Workload_stream.Arrival app -> ignore (submit lv ~at:time app : State.job)
      | Workload_stream.Departure idx -> ignore (cancel lv ~at:time ~id:idx : bool))
    (Workload_stream.events stream);
  drain lv;
  live_report lv
