type config = {
  policy : Policy.t;
  mode : Incremental.mode;
  validate : bool;
  record : bool;
}

let default_config =
  { policy = Policy.Every_event; mode = Incremental.Warm; validate = false;
    record = false }

type snapshot = {
  time : float;
  job_ids : int array;
  procs : float array;
  cache : float array;
  k : float;
}

type report = {
  metrics : Metrics.t;
  jobs : State.job list;
  snapshots : snapshot list;
}

(* Jobs within this remaining-work fraction of done are completed by the
   same sweep: equalised cohorts finish within the makespan bisection
   tolerance (~1e-12 relative), far inside this margin, while genuinely
   unfinished jobs are far outside it. *)
let completion_eps = 1e-9

let m_events =
  Obs.Metrics.counter ~help:"events handled by the online service"
    "service.events"

let m_event_us =
  Obs.Metrics.histogram ~help:"wall time per event handled, in microseconds"
    "service.event_us"

let m_queue_depth =
  Obs.Metrics.gauge ~help:"live jobs holding zero processors after the last event"
    "service.queue_depth"

let m_live_jobs =
  Obs.Metrics.gauge ~help:"live jobs after the last event" "service.live_jobs"

let run ?(config = default_config) ~platform stream =
  Policy.validate config.policy;
  let state = State.create platform in
  let engine = Simulator.Engine.create () in
  let inc = Incremental.create () in
  let events_since = ref 0 in
  let events_handled = ref 0 in
  let last_solve = ref 0. in
  let forced = ref 0 in
  let migrations = ref 0 in
  let snapshots = ref [] in
  let epoch = ref 0 in
  let arrival_jobs = Array.make (max 1 (Workload_stream.arrivals stream)) None in

  let degradation () =
    (* Cheap estimate of the relative makespan damage of not re-solving:
       idle platform fraction plus the queued share of live work.  The
       idle fraction is floored at 1e-9 so that the one-ulp residue of
       the post-solve processor rescale reads as exactly zero — the
       Threshold decision must not depend on bisection noise (it would
       split warm and cold runs on razor-edge ties). *)
    let jobs = State.live state in
    let p = platform.Model.Platform.p in
    let used =
      Array.fold_left (fun acc (j : State.job) -> acc +. j.procs) 0. jobs
    in
    let idle =
      let frac = (p -. used) /. p in
      if frac > 1e-9 then frac else 0.
    in
    let queued_w = ref 0. and total_w = ref 0. in
    Array.iter
      (fun (j : State.job) ->
        let c = Model.Exec_model.work_cost ~app:j.app ~platform ~x:j.cache in
        let w = j.remaining *. c in
        total_w := !total_w +. w;
        if j.procs = 0. then queued_w := !queued_w +. w)
      jobs;
    idle +. (if !total_w > 0. then !queued_w /. !total_w else 0.)
  in

  let resolve ~is_forced () =
    let jobs = State.live state in
    if Array.length jobs > 0 then begin
      let apps = Array.map State.remaining_app jobs in
      let now = Simulator.Engine.now engine in
      let sol =
        Incremental.solve inc ~mode:config.mode ~elapsed:(now -. !last_solve)
          ~platform ~apps
      in
      migrations :=
        !migrations
        + State.apply state jobs sol.Incremental.schedule.Model.Schedule.allocs;
      if is_forced then incr forced;
      events_since := 0;
      last_solve := now;
      if config.record then
        snapshots :=
          {
            time = now;
            job_ids = Array.map (fun (j : State.job) -> j.id) jobs;
            procs = Array.map (fun (j : State.job) -> j.procs) jobs;
            cache = Array.map (fun (j : State.job) -> j.cache) jobs;
            k = sol.Incremental.k;
          }
          :: !snapshots;
      if config.validate then State.assert_conservation state
    end
  in

  let decide () =
    let jobs = State.live state in
    if Array.length jobs = 0 then ()
    else begin
      let queued = Array.exists (fun (j : State.job) -> j.procs = 0.) jobs in
      let running = Array.exists (fun (j : State.job) -> j.procs > 0.) jobs in
      if queued && not running then resolve ~is_forced:true ()
      else if
        Policy.should_resolve config.policy ~events_pending:!events_since
          ~degradation
      then resolve ~is_forced:false ()
    end
  in

  (* Per-event probe epilogue: wall time into the latency histogram,
     queue depth and live-job gauges from the post-event state.  Called
     only when probes are on; with probes off each handler pays one flag
     test and two constant bindings. *)
  let finish_event sp t0 =
    Obs.Metrics.incr m_events;
    Obs.Metrics.observe m_event_us (Obs.Clock.elapsed_us ~since:t0);
    let jobs = State.live state in
    let queued =
      Array.fold_left
        (fun acc (j : State.job) -> if j.procs = 0. then acc + 1 else acc)
        0 jobs
    in
    Obs.Metrics.set m_queue_depth (float_of_int queued);
    Obs.Metrics.set m_live_jobs (float_of_int (Array.length jobs));
    Obs.Span.stop sp
  in

  (* One next-completion event per allocation epoch: equalised cohorts
     finish together, so the earliest predicted completion sweeps every
     job that is done to within [completion_eps].  Superseded predictions
     carry a stale epoch and are ignored when they fire. *)
  let rec schedule_next_completion () =
    incr epoch;
    let e = !epoch in
    let next =
      Array.fold_left
        (fun acc j -> Float.min acc (State.remaining_time ~platform j))
        infinity (State.live state)
    in
    if next < infinity then
      Simulator.Engine.schedule engine
        ~at:(Simulator.Engine.now engine +. next)
        (fun eng -> on_completion eng e)

  and on_completion eng e =
    if e = !epoch then begin
      let on = Obs.Probe.on () in
      let sp =
        if on then Obs.Span.start "service.completion" else Obs.Span.null
      in
      let t0 = if on then Obs.Clock.now_ns () else 0L in
      State.advance state ~to_:(Simulator.Engine.now eng);
      Array.iter
        (fun (j : State.job) ->
          if j.procs > 0. && j.remaining <= completion_eps then
            State.complete state j)
        (State.live state);
      incr events_handled;
      incr events_since;
      after_event ();
      if on then finish_event sp t0
    end

  and after_event () =
    if config.validate then State.assert_conservation state;
    decide ();
    schedule_next_completion ()
  in

  let handle_arrival idx app eng =
    let on = Obs.Probe.on () in
    let sp = if on then Obs.Span.start "service.arrival" else Obs.Span.null in
    let t0 = if on then Obs.Clock.now_ns () else 0L in
    State.advance state ~to_:(Simulator.Engine.now eng);
    let job = State.add state ~app in
    arrival_jobs.(idx) <- Some job;
    incr events_handled;
    incr events_since;
    after_event ();
    if on then finish_event sp t0
  in

  let handle_departure idx eng =
    match arrival_jobs.(idx) with
    | Some job when job.State.finish = None && not job.State.cancelled ->
      let on = Obs.Probe.on () in
      let sp =
        if on then Obs.Span.start "service.departure" else Obs.Span.null
      in
      let t0 = if on then Obs.Clock.now_ns () else 0L in
      State.advance state ~to_:(Simulator.Engine.now eng);
      State.cancel state job;
      incr events_handled;
      incr events_since;
      after_event ();
      if on then finish_event sp t0
    | _ -> ()
  in

  let next_arrival = ref 0 in
  List.iter
    (fun { Workload_stream.time; kind } ->
      match kind with
      | Workload_stream.Arrival app ->
        let idx = !next_arrival in
        incr next_arrival;
        Simulator.Engine.schedule engine ~at:time (handle_arrival idx app)
      | Workload_stream.Departure idx ->
        Simulator.Engine.schedule engine ~at:time (handle_departure idx))
    (Workload_stream.events stream);

  Simulator.Engine.run engine;
  (* Safety net: a policy can leave jobs queued after the stream drains
     (it never triggered and nothing was running to force it). *)
  while Array.length (State.live state) > 0 do
    resolve ~is_forced:true ();
    schedule_next_completion ();
    Simulator.Engine.run engine
  done;

  let finished = State.finished state in
  let completed =
    List.filter (fun (j : State.job) -> j.finish <> None) finished
  in
  let cancelled =
    List.length (List.filter (fun (j : State.job) -> j.cancelled) finished)
  in
  let responses =
    Array.of_list
      (List.map
         (fun (j : State.job) -> Option.get j.finish -. j.arrival)
         completed)
  in
  let stretches =
    Array.of_list
      (List.map
         (fun (j : State.job) ->
           (Option.get j.finish -. j.arrival) /. j.alone_time)
         completed)
  in
  let makespan = State.now state in
  let c = Incremental.counters inc in
  let metrics =
    {
      Metrics.jobs = Workload_stream.arrivals stream;
      completed = List.length completed;
      cancelled;
      events = !events_handled;
      resolves = c.Incremental.resolves;
      forced_resolves = !forced;
      migrations = !migrations;
      solver_iters = c.Incremental.solver_iters;
      partition_ops = c.Incremental.partition_ops;
      makespan;
      mean_response =
        (if Array.length responses = 0 then 0. else Util.Stats.mean responses);
      max_response =
        (if Array.length responses = 0 then 0.
         else snd (Util.Stats.min_max responses));
      mean_stretch =
        (if Array.length stretches = 0 then 0. else Util.Stats.mean stretches);
      max_stretch =
        (if Array.length stretches = 0 then 0.
         else snd (Util.Stats.min_max stretches));
      utilization =
        (if makespan > 0. then
           State.busy_integral state /. (platform.Model.Platform.p *. makespan)
         else 0.);
    }
  in
  { metrics; jobs = finished; snapshots = List.rev !snapshots }
