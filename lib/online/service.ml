type config = {
  policy : Policy.t;
  mode : Incremental.mode;
  validate : bool;
  record : bool;
}

let default_config =
  { policy = Policy.Every_event; mode = Incremental.Warm; validate = false;
    record = false }

type snapshot = {
  time : float;
  job_ids : int array;
  procs : float array;
  cache : float array;
  k : float;
}

type report = {
  metrics : Metrics.t;
  jobs : State.job list;
  snapshots : snapshot list;
}

type notice =
  | Resolved of { time : float; epoch : int; k : float }
  | Completed of { time : float; id : int }

(* Jobs within this remaining-work fraction of done are completed by the
   same sweep: equalised cohorts finish within the makespan bisection
   tolerance (~1e-12 relative), far inside this margin, while genuinely
   unfinished jobs are far outside it. *)
let completion_eps = 1e-9

let m_events =
  Obs.Metrics.counter ~help:"events handled by the online service"
    "service.events"

let m_event_us =
  Obs.Metrics.histogram ~help:"wall time per event handled, in microseconds"
    "service.event_us"

let m_queue_depth =
  Obs.Metrics.gauge ~help:"live jobs holding zero processors after the last event"
    "service.queue_depth"

let m_live_jobs =
  Obs.Metrics.gauge ~help:"live jobs after the last event" "service.live_jobs"

(* The stepwise core.  [run] below and the [Serve] daemon both drive this
   record, so an offline replay and a served stream of the same events
   are the same code path (the daemon-vs-offline equivalence property in
   test/test_serve.ml holds by construction, and is still checked). *)
type live = {
  config : config;
  platform : Model.Platform.t;
  state : State.t;
  engine : Simulator.Engine.t;
  inc : Incremental.t;
  jobs_by_id : (int, State.job) Hashtbl.t;
  listener : (notice -> unit) option;
  mutable events_since : int;
  mutable events_handled : int;
  mutable last_solve : float;
  mutable forced : int;
  mutable migrations : int;
  mutable snapshots_rev : snapshot list;
  mutable pred_epoch : int;       (* completion-prediction generation *)
  mutable last_k : float option;  (* equalised makespan of the last solve *)
}

let live_create ?(config = default_config) ?listener ~platform () =
  Policy.validate config.policy;
  {
    config;
    platform;
    state = State.create platform;
    engine = Simulator.Engine.create ();
    inc = Incremental.create ();
    jobs_by_id = Hashtbl.create 64;
    listener;
    events_since = 0;
    events_handled = 0;
    last_solve = 0.;
    forced = 0;
    migrations = 0;
    snapshots_rev = [];
    pred_epoch = 0;
    last_k = None;
  }

let live_now lv = Simulator.Engine.now lv.engine

let live_epoch lv = (Incremental.counters lv.inc).Incremental.resolves

let live_state lv = lv.state

let last_makespan lv = lv.last_k

let find_job lv id = Hashtbl.find_opt lv.jobs_by_id id

let notify lv n = match lv.listener with None -> () | Some f -> f n

(* Cheap estimate of the relative makespan damage of not re-solving:
   idle platform fraction plus the queued share of live work.  The idle
   fraction is floored at 1e-9 so that the one-ulp residue of the
   post-solve processor rescale reads as exactly zero — the Threshold
   decision must not depend on bisection noise (it would split warm and
   cold runs on razor-edge ties). *)
let degradation lv () =
  let jobs = State.live lv.state in
  let p = lv.platform.Model.Platform.p in
  let used =
    Array.fold_left (fun acc (j : State.job) -> acc +. j.procs) 0. jobs
  in
  let idle =
    let frac = (p -. used) /. p in
    if frac > 1e-9 then frac else 0.
  in
  let queued_w = ref 0. and total_w = ref 0. in
  Array.iter
    (fun (j : State.job) ->
      let c =
        Model.Exec_model.work_cost ~app:j.app ~platform:lv.platform ~x:j.cache
      in
      let w = j.remaining *. c in
      total_w := !total_w +. w;
      if j.procs = 0. then queued_w := !queued_w +. w)
    jobs;
  idle +. (if !total_w > 0. then !queued_w /. !total_w else 0.)

let resolve lv ~is_forced () =
  let jobs = State.live lv.state in
  if Array.length jobs > 0 then begin
    let apps = Array.map State.remaining_app jobs in
    let now = Simulator.Engine.now lv.engine in
    let sol =
      Incremental.solve lv.inc ~mode:lv.config.mode
        ~elapsed:(now -. lv.last_solve) ~platform:lv.platform ~apps
    in
    lv.migrations <-
      lv.migrations
      + State.apply lv.state jobs sol.Incremental.schedule.Model.Schedule.allocs;
    if is_forced then lv.forced <- lv.forced + 1;
    lv.events_since <- 0;
    lv.last_solve <- now;
    lv.last_k <- Some sol.Incremental.k;
    if lv.config.record then
      lv.snapshots_rev <-
        {
          time = now;
          job_ids = Array.map (fun (j : State.job) -> j.id) jobs;
          procs = Array.map (fun (j : State.job) -> j.procs) jobs;
          cache = Array.map (fun (j : State.job) -> j.cache) jobs;
          k = sol.Incremental.k;
        }
        :: lv.snapshots_rev;
    if lv.config.validate then State.assert_conservation lv.state;
    notify lv (Resolved { time = now; epoch = live_epoch lv; k = sol.Incremental.k })
  end

let decide lv =
  let jobs = State.live lv.state in
  if Array.length jobs = 0 then ()
  else begin
    let queued = Array.exists (fun (j : State.job) -> j.procs = 0.) jobs in
    let running = Array.exists (fun (j : State.job) -> j.procs > 0.) jobs in
    if queued && not running then resolve lv ~is_forced:true ()
    else if
      Policy.should_resolve lv.config.policy ~events_pending:lv.events_since
        ~degradation:(degradation lv)
    then resolve lv ~is_forced:false ()
  end

(* Per-event probe epilogue: wall time into the latency histogram, queue
   depth and live-job gauges from the post-event state.  Called only when
   probes are on; with probes off each handler pays one flag test and two
   constant bindings. *)
let finish_event lv sp t0 =
  Obs.Metrics.incr m_events;
  Obs.Metrics.observe m_event_us (Obs.Clock.elapsed_us ~since:t0);
  let jobs = State.live lv.state in
  let queued =
    Array.fold_left
      (fun acc (j : State.job) -> if j.procs = 0. then acc + 1 else acc)
      0 jobs
  in
  Obs.Metrics.set m_queue_depth (float_of_int queued);
  Obs.Metrics.set m_live_jobs (float_of_int (Array.length jobs));
  Obs.Span.stop sp

(* One next-completion event per allocation epoch: equalised cohorts
   finish together, so the earliest predicted completion sweeps every job
   that is done to within [completion_eps].  Superseded predictions carry
   a stale epoch and are ignored when they fire. *)
let rec schedule_next_completion lv =
  lv.pred_epoch <- lv.pred_epoch + 1;
  let e = lv.pred_epoch in
  let next =
    Array.fold_left
      (fun acc j -> Float.min acc (State.remaining_time ~platform:lv.platform j))
      infinity (State.live lv.state)
  in
  if next < infinity then
    Simulator.Engine.schedule lv.engine
      ~at:(Simulator.Engine.now lv.engine +. next)
      (fun eng -> on_completion lv eng e)

and on_completion lv eng e =
  if e = lv.pred_epoch then begin
    let on = Obs.Probe.on () in
    let sp =
      if on then Obs.Span.start "service.completion" else Obs.Span.null
    in
    let t0 = if on then Obs.Clock.now_ns () else 0L in
    let now = Simulator.Engine.now eng in
    State.advance lv.state ~to_:now;
    Array.iter
      (fun (j : State.job) ->
        if j.procs > 0. && j.remaining <= completion_eps then begin
          State.complete lv.state j;
          notify lv (Completed { time = now; id = j.id })
        end)
      (State.live lv.state);
    lv.events_handled <- lv.events_handled + 1;
    lv.events_since <- lv.events_since + 1;
    after_event lv;
    if on then finish_event lv sp t0
  end

and after_event lv =
  if lv.config.validate then State.assert_conservation lv.state;
  decide lv;
  schedule_next_completion lv

(* Advance the engine (firing due completion predictions, each of which
   integrates progress and may re-solve) and then the state clock to
   [to_].  Times in the past clamp to now: the daemon may observe a
   request timestamped slightly behind its model clock. *)
let advance lv ~to_ =
  let to_ = Float.max to_ (Simulator.Engine.now lv.engine) in
  Simulator.Engine.advance_to lv.engine ~to_;
  State.advance lv.state ~to_

let submit lv ~at app =
  let at = Float.max at (Simulator.Engine.now lv.engine) in
  Simulator.Engine.advance_to lv.engine ~to_:at;
  let on = Obs.Probe.on () in
  let sp = if on then Obs.Span.start "service.arrival" else Obs.Span.null in
  let t0 = if on then Obs.Clock.now_ns () else 0L in
  State.advance lv.state ~to_:at;
  let job = State.add lv.state ~app in
  Hashtbl.replace lv.jobs_by_id job.State.id job;
  lv.events_handled <- lv.events_handled + 1;
  lv.events_since <- lv.events_since + 1;
  after_event lv;
  if on then finish_event lv sp t0;
  job

let cancel lv ~at ~id =
  let at = Float.max at (Simulator.Engine.now lv.engine) in
  (* Completions due before the cancellation fire first, exactly as they
     would in a time-ordered replay — a job that finishes before its
     departure arrives is not cancelled. *)
  Simulator.Engine.advance_to lv.engine ~to_:at;
  match Hashtbl.find_opt lv.jobs_by_id id with
  | Some job when job.State.finish = None && not job.State.cancelled ->
    let on = Obs.Probe.on () in
    let sp = if on then Obs.Span.start "service.departure" else Obs.Span.null in
    let t0 = if on then Obs.Clock.now_ns () else 0L in
    State.advance lv.state ~to_:at;
    State.cancel lv.state job;
    lv.events_handled <- lv.events_handled + 1;
    lv.events_since <- lv.events_since + 1;
    after_event lv;
    if on then finish_event lv sp t0;
    true
  | _ -> false

let drain_step lv =
  Simulator.Engine.run lv.engine;
  if Array.length (State.live lv.state) = 0 then false
  else begin
    (* A policy can leave jobs queued after the input stops (it never
       triggered and nothing was running to force it). *)
    resolve lv ~is_forced:true ();
    schedule_next_completion lv;
    true
  end

let drain lv =
  while drain_step lv do
    ()
  done

let live_report lv =
  let finished = State.finished lv.state in
  let completed =
    List.filter (fun (j : State.job) -> j.finish <> None) finished
  in
  let cancelled =
    List.length (List.filter (fun (j : State.job) -> j.cancelled) finished)
  in
  let responses =
    Array.of_list
      (List.map
         (fun (j : State.job) -> Option.get j.finish -. j.arrival)
         completed)
  in
  let stretches =
    Array.of_list
      (List.map
         (fun (j : State.job) ->
           (Option.get j.finish -. j.arrival) /. j.alone_time)
         completed)
  in
  let makespan = State.now lv.state in
  let c = Incremental.counters lv.inc in
  let metrics =
    {
      Metrics.jobs = Hashtbl.length lv.jobs_by_id;
      completed = List.length completed;
      cancelled;
      events = lv.events_handled;
      resolves = c.Incremental.resolves;
      forced_resolves = lv.forced;
      migrations = lv.migrations;
      solver_iters = c.Incremental.solver_iters;
      partition_ops = c.Incremental.partition_ops;
      warm_hits = c.Incremental.warm_hits;
      cold_fallbacks = c.Incremental.cold_fallbacks;
      makespan;
      mean_response =
        (if Array.length responses = 0 then 0. else Util.Stats.mean responses);
      max_response =
        (if Array.length responses = 0 then 0.
         else snd (Util.Stats.min_max responses));
      mean_stretch =
        (if Array.length stretches = 0 then 0. else Util.Stats.mean stretches);
      max_stretch =
        (if Array.length stretches = 0 then 0.
         else snd (Util.Stats.min_max stretches));
      utilization =
        (if makespan > 0. then
           State.busy_integral lv.state
           /. (lv.platform.Model.Platform.p *. makespan)
         else 0.);
    }
  in
  { metrics; jobs = finished; snapshots = List.rev lv.snapshots_rev }

let run ?(config = default_config) ~platform stream =
  let lv = live_create ~config ~platform () in
  List.iter
    (fun { Workload_stream.time; kind } ->
      match kind with
      | Workload_stream.Arrival app -> ignore (submit lv ~at:time app : State.job)
      | Workload_stream.Departure idx -> ignore (cancel lv ~at:time ~id:idx : bool))
    (Workload_stream.events stream);
  drain lv;
  live_report lv
