(* Columnar live-set state.

   Hot per-job quantities live in flat float-array columns indexed by a
   [slot] drawn from a freelist; a [job] value is a thin handle carrying
   the immutable identity (id, app, arrival) plus its slot.  The event
   loop (progress integration, completion prediction, degradation
   estimation) walks the columns linearly instead of chasing a record
   per job, and the incremental solver reads the same columns through
   {!view} — one arrival touches cache-dense arrays end to end.

   Retirement marks the handle's slot [-1] (final values are stashed on
   the handle first) and returns the slot to the freelist, so the next
   admission reuses it; the admission-ordered [dense] iteration array
   keeps a hole where the job was until {!compact} squeezes it (lazily,
   when holes pile up or a solver view is taken).  Handles never read
   columns after retirement, so slot reuse cannot alias. *)

type job = {
  id : int;
  app : Model.App.t;
  arrival : float;
  alone_time : float;
  mutable slot : int; (* column index; -1 once retired *)
  mutable dpos : int; (* index in the dense iteration array *)
  mutable allocated : bool;
  mutable epoch : int;
  mutable migrations : int;
  mutable finish : float option;
  mutable cancelled : bool;
  mutable rem_final : float; (* remaining fraction at retirement *)
  cols : cols;
}

(* Parallel per-slot columns, all replaced together on growth.  The
   solver-input columns (w, s, f, m0, c0, footprint, d, dpow, capx) are
   pure functions of the app and the platform, computed once at
   admission; exe and access are caches of the execution model under
   the *current* allocation, refreshed on every allocation change. *)
and cols = {
  mutable cap : int;
  mutable c_remaining : float array;
  mutable c_procs : float array;
  mutable c_cache : float array;
  mutable c_exe : float array; (* Exe(p, x); infinity while queued *)
  mutable c_access : float array; (* access_cost at the current x *)
  mutable c_w : float array;
  mutable c_s : float array;
  mutable c_f : float array;
  mutable c_m0 : float array;
  mutable c_c0 : float array;
  mutable c_fp : float array;
  mutable c_d : float array; (* Power_law.d_of *)
  mutable c_dpow : float array; (* d ** (1 / alpha) *)
  mutable c_capx : float array; (* max useful cache fraction *)
}

type t = {
  platform : Model.Platform.t;
  cols : cols;
  mutable clock : float;
  mutable next_id : int;
  mutable busy : float;
  mutable dense : job array; (* admission order, with retirement holes *)
  mutable dense_slot : int array; (* slot mirror of [dense]; -1 = hole *)
  mutable ndense : int;
  mutable nlive : int;
  mutable free : int array; (* freelist stack of retired slots *)
  mutable nfree : int;
  mutable hwm : int; (* slots ever allocated *)
  mutable finished_rev : job list;
  mutable view_slot : int array; (* position -> slot, for {!view} *)
}

let create platform =
  {
    platform;
    cols =
      {
        cap = 0;
        c_remaining = [||];
        c_procs = [||];
        c_cache = [||];
        c_exe = [||];
        c_access = [||];
        c_w = [||];
        c_s = [||];
        c_f = [||];
        c_m0 = [||];
        c_c0 = [||];
        c_fp = [||];
        c_d = [||];
        c_dpow = [||];
        c_capx = [||];
      };
    clock = 0.;
    next_id = 0;
    busy = 0.;
    dense = [||];
    dense_slot = [||];
    ndense = 0;
    nlive = 0;
    free = [||];
    nfree = 0;
    hwm = 0;
    finished_rev = [];
    view_slot = [||];
  }

let platform t = t.platform
let now t = t.clock
let next_id t = t.next_id

(* --- accessors --------------------------------------------------------- *)

let id j = j.id
let app j = j.app
let arrival j = j.arrival
let alone_time j = j.alone_time
let allocated j = j.allocated
let epoch j = j.epoch
let migrations j = j.migrations
let finish j = j.finish
let cancelled j = j.cancelled
let remaining j = if j.slot >= 0 then j.cols.c_remaining.(j.slot) else j.rem_final
let procs j = if j.slot >= 0 then j.cols.c_procs.(j.slot) else 0.
let cache j = if j.slot >= 0 then j.cols.c_cache.(j.slot) else 0.

(* --- growth ------------------------------------------------------------ *)

let grow_float a cap =
  let b = Array.make cap 0. in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_cols c =
  let cap = max 8 (2 * c.cap) in
  c.c_remaining <- grow_float c.c_remaining cap;
  c.c_procs <- grow_float c.c_procs cap;
  c.c_cache <- grow_float c.c_cache cap;
  c.c_exe <- grow_float c.c_exe cap;
  c.c_access <- grow_float c.c_access cap;
  c.c_w <- grow_float c.c_w cap;
  c.c_s <- grow_float c.c_s cap;
  c.c_f <- grow_float c.c_f cap;
  c.c_m0 <- grow_float c.c_m0 cap;
  c.c_c0 <- grow_float c.c_c0 cap;
  c.c_fp <- grow_float c.c_fp cap;
  c.c_d <- grow_float c.c_d cap;
  c.c_dpow <- grow_float c.c_dpow cap;
  c.c_capx <- grow_float c.c_capx cap;
  c.cap <- cap

let alloc_slot t =
  if t.nfree > 0 then begin
    t.nfree <- t.nfree - 1;
    t.free.(t.nfree)
  end
  else begin
    if t.hwm >= t.cols.cap then grow_cols t.cols;
    let s = t.hwm in
    t.hwm <- t.hwm + 1;
    s
  end

let free_slot t s =
  if Array.length t.free <= t.nfree then begin
    let b = Array.make (max 8 (2 * Array.length t.free)) 0 in
    Array.blit t.free 0 b 0 t.nfree;
    t.free <- b
  end;
  t.free.(t.nfree) <- s;
  t.nfree <- t.nfree + 1

(* Squeeze retirement holes out of the dense iteration array, preserving
   admission order. *)
let compact t =
  if t.ndense <> t.nlive then begin
    let k = ref 0 in
    for i = 0 to t.ndense - 1 do
      let s = t.dense_slot.(i) in
      if s >= 0 then begin
        let j = t.dense.(i) in
        t.dense.(!k) <- j;
        t.dense_slot.(!k) <- s;
        j.dpos <- !k;
        incr k
      end
    done;
    t.ndense <- !k
  end

let push_dense t j =
  if t.ndense >= Array.length t.dense then begin
    (* Prefer squeezing holes to growing when most entries are dead. *)
    if t.nlive * 2 <= t.ndense then compact t;
    if t.ndense >= Array.length t.dense then begin
      let cap = max 8 (2 * Array.length t.dense) in
      let d = Array.make cap j in
      Array.blit t.dense 0 d 0 t.ndense;
      t.dense <- d;
      let ds = Array.make cap (-1) in
      Array.blit t.dense_slot 0 ds 0 t.ndense;
      t.dense_slot <- ds
    end
  end;
  j.dpos <- t.ndense;
  t.dense.(t.ndense) <- j;
  t.dense_slot.(t.ndense) <- j.slot;
  t.ndense <- t.ndense + 1;
  t.nlive <- t.nlive + 1

(* --- admission --------------------------------------------------------- *)

(* Fill every column of [slot] for a job on [app] with the given
   progress/allocation.  The exe/access caches are pure functions of
   the app, platform and allocation, so a checkpoint restore recomputes
   bit-identical values. *)
let fill_slot t slot ~(app : Model.App.t) ~remaining ~procs ~cache =
  let c = t.cols and pf = t.platform in
  c.c_remaining.(slot) <- remaining;
  c.c_procs.(slot) <- procs;
  c.c_cache.(slot) <- cache;
  c.c_w.(slot) <- app.Model.App.w;
  c.c_s.(slot) <- app.Model.App.s;
  c.c_f.(slot) <- app.Model.App.f;
  c.c_m0.(slot) <- app.Model.App.m0;
  c.c_c0.(slot) <- app.Model.App.c0;
  c.c_fp.(slot) <- app.Model.App.footprint;
  let d = Model.Power_law.d_of ~app ~platform:pf in
  c.c_d.(slot) <- d;
  c.c_dpow.(slot) <- (if d = 0. then 0. else d ** (1. /. pf.Model.Platform.alpha));
  c.c_capx.(slot) <- Model.Power_law.max_useful_fraction ~app ~platform:pf;
  let access = Model.Exec_model.access_cost ~app ~platform:pf cache in
  c.c_access.(slot) <- access;
  c.c_exe.(slot) <-
    (if procs > 0. then Model.Exec_model.amdahl_flops ~app procs *. access
     else infinity)

let mk_job t ~id ~app ~arrival ~slot =
  let alone_time =
    Model.Exec_model.exe ~app ~platform:t.platform
      ~p:t.platform.Model.Platform.p ~x:1.
  in
  {
    id;
    app;
    arrival;
    alone_time;
    slot;
    dpos = -1;
    allocated = false;
    epoch = 0;
    migrations = 0;
    finish = None;
    cancelled = false;
    rem_final = 0.;
    cols = t.cols;
  }

let add t ~app =
  let slot = alloc_slot t in
  fill_slot t slot ~app ~remaining:1. ~procs:0. ~cache:0.;
  let job = mk_job t ~id:t.next_id ~app ~arrival:t.clock ~slot in
  t.next_id <- t.next_id + 1;
  push_dense t job;
  job

let restore t ~clock ~next_id ~busy =
  if t.nlive > 0 || t.finished_rev <> [] then
    invalid_arg "State.restore: state is not fresh";
  if Float.is_nan clock || clock < 0. then
    invalid_arg "State.restore: bad clock";
  if next_id < 0 then invalid_arg "State.restore: bad next_id";
  t.clock <- clock;
  t.next_id <- next_id;
  t.busy <- busy

(* The id of the newest live job, or -1: injection order enforcement.
   The newest live handle is the last non-hole dense entry. *)
let last_live_id t =
  let rec scan i = if i < 0 then -1
    else if t.dense_slot.(i) >= 0 then t.dense.(i).id
    else scan (i - 1)
  in
  scan (t.ndense - 1)

let inject t ~id ~app ~arrival ~remaining ~procs ~cache ~allocated ~epoch
    ~migrations =
  if last_live_id t >= id then
    invalid_arg "State.inject: jobs must be injected in id order";
  let slot = alloc_slot t in
  fill_slot t slot ~app ~remaining ~procs ~cache;
  let job = mk_job t ~id ~app ~arrival ~slot in
  job.allocated <- allocated;
  job.epoch <- epoch;
  job.migrations <- migrations;
  push_dense t job;
  if id >= t.next_id then t.next_id <- id + 1;
  job

(* --- retirement -------------------------------------------------------- *)

let retire t job ~zero_remaining =
  if job.slot < 0 then invalid_arg "State: job is not live";
  let s = job.slot in
  job.rem_final <- (if zero_remaining then 0. else t.cols.c_remaining.(s));
  job.slot <- (-1);
  t.dense_slot.(job.dpos) <- (-1);
  free_slot t s;
  t.nlive <- t.nlive - 1;
  t.finished_rev <- job :: t.finished_rev

let complete t job =
  retire t job ~zero_remaining:true;
  job.finish <- Some t.clock

let cancel t job =
  retire t job ~zero_remaining:false;
  job.cancelled <- true

(* --- iteration --------------------------------------------------------- *)

let live_count t = t.nlive

let iter_live t f =
  (* Safe against retirement of the visited job from inside [f]:
     retiring only blanks dense entries, never moves them. *)
  for i = 0 to t.ndense - 1 do
    if t.dense_slot.(i) >= 0 then f t.dense.(i)
  done

let live t =
  if t.nlive = 0 then [||]
  else begin
    compact t;
    Array.sub t.dense 0 t.nlive
  end

let finished t = List.rev t.finished_rev

let running t =
  let c = ref 0 in
  for i = 0 to t.ndense - 1 do
    let s = t.dense_slot.(i) in
    if s >= 0 && t.cols.c_procs.(s) > 0. then incr c
  done;
  !c

let queued t =
  let c = ref 0 in
  for i = 0 to t.ndense - 1 do
    let s = t.dense_slot.(i) in
    if s >= 0 && t.cols.c_procs.(s) = 0. then incr c
  done;
  !c

(* --- progress ---------------------------------------------------------- *)

let advance t ~to_ =
  if Float.is_nan to_ then invalid_arg "State.advance: NaN time";
  if to_ < t.clock then invalid_arg "State.advance: cannot advance backwards";
  let dt = to_ -. t.clock in
  if dt > 0. then begin
    let c = t.cols in
    for i = 0 to t.ndense - 1 do
      let s = t.dense_slot.(i) in
      if s >= 0 then begin
        let p = c.c_procs.(s) in
        if p > 0. then begin
          t.busy <- t.busy +. (p *. dt);
          let rem = c.c_remaining.(s) in
          if rem > 0. then
            c.c_remaining.(s) <- Float.max 0. (rem -. (dt /. c.c_exe.(s)))
        end
      end
    done
  end;
  t.clock <- to_

let remaining_app job =
  if job.finish <> None || job.cancelled then
    invalid_arg "State.remaining_app: job is finished";
  Model.App.with_w job.app (remaining job *. job.app.Model.App.w)

let remaining_time ~platform:_ job =
  if job.slot < 0 then infinity
  else begin
    let c = job.cols and s = job.slot in
    if c.c_procs.(s) <= 0. then infinity
    else c.c_remaining.(s) *. c.c_exe.(s)
  end

let min_remaining_time t =
  let c = t.cols in
  let acc = ref infinity in
  for i = 0 to t.ndense - 1 do
    let s = t.dense_slot.(i) in
    if s >= 0 && c.c_procs.(s) > 0. then begin
      let v = c.c_remaining.(s) *. c.c_exe.(s) in
      if v < !acc then acc := v
    end
  done;
  !acc

let demand_summary t =
  let c = t.cols in
  let used = ref 0. and queued_w = ref 0. and total_w = ref 0. in
  for i = 0 to t.ndense - 1 do
    let s = t.dense_slot.(i) in
    if s >= 0 then begin
      let p = c.c_procs.(s) in
      used := !used +. p;
      let wk = c.c_remaining.(s) *. (c.c_w.(s) *. c.c_access.(s)) in
      total_w := !total_w +. wk;
      if p = 0. then queued_w := !queued_w +. wk
    end
  done;
  (!used, !queued_w, !total_w)

(* --- allocation -------------------------------------------------------- *)

let rel_changed a b =
  Float.abs (a -. b) > 1e-9 *. Float.max 1e-30 (Float.max (Float.abs a) (Float.abs b))

(* Install one job's allocation: columns, the exe/access caches, and the
   migration/epoch bookkeeping.  [access] is the precomputed access cost
   at [cache] when the caller (the columnar solver) already derived it;
   otherwise it is recomputed from the model — the same pure function,
   so both paths cache bit-identical values. *)
let set_alloc t job ~procs ~cache ~access =
  if job.slot < 0 then invalid_arg "State: job is not live";
  let c = t.cols and s = job.slot in
  let migrated =
    job.allocated
    && (rel_changed c.c_procs.(s) procs || rel_changed c.c_cache.(s) cache)
  in
  if migrated then job.migrations <- job.migrations + 1;
  c.c_procs.(s) <- procs;
  c.c_cache.(s) <- cache;
  let access =
    match access with
    | Some a -> a
    | None ->
      Model.Exec_model.access_cost ~app:job.app ~platform:t.platform cache
  in
  c.c_access.(s) <- access;
  c.c_exe.(s) <-
    (if procs > 0. then
       ((c.c_s.(s) *. c.c_w.(s)) +. ((1. -. c.c_s.(s)) *. c.c_w.(s) /. procs))
       *. access
     else infinity);
  if procs > 0. then job.allocated <- true;
  job.epoch <- job.epoch + 1;
  migrated

let apply t jobs allocs =
  if Array.length jobs <> Array.length allocs then
    invalid_arg "State.apply: jobs and allocations must have the same length";
  let migrations = ref 0 in
  Array.iteri
    (fun i job ->
      let { Model.Schedule.procs; cache } = allocs.(i) in
      if set_alloc t job ~procs ~cache ~access:None then incr migrations)
    jobs;
  !migrations

(* --- solver view ------------------------------------------------------- *)

type view = {
  v_n : int;
  v_slot : int array;
  v_remaining : float array;
  v_w : float array;
  v_s : float array;
  v_f : float array;
  v_m0 : float array;
  v_c0 : float array;
  v_fp : float array;
  v_d : float array;
  v_dpow : float array;
  v_capx : float array;
}

let view t =
  compact t;
  let n = t.nlive in
  if Array.length t.view_slot < n then
    t.view_slot <- Array.make (max n ((2 * Array.length t.view_slot) + 8)) 0;
  Array.blit t.dense_slot 0 t.view_slot 0 n;
  let c = t.cols in
  {
    v_n = n;
    v_slot = t.view_slot;
    v_remaining = c.c_remaining;
    v_w = c.c_w;
    v_s = c.c_s;
    v_f = c.c_f;
    v_m0 = c.c_m0;
    v_c0 = c.c_c0;
    v_fp = c.c_fp;
    v_d = c.c_d;
    v_dpow = c.c_dpow;
    v_capx = c.c_capx;
  }

let apply_view t ~n ~procs ~cache ~access =
  if n <> t.nlive || t.ndense <> t.nlive then
    invalid_arg "State.apply_view: stale view";
  let migrations = ref 0 in
  for i = 0 to n - 1 do
    if
      set_alloc t t.dense.(i) ~procs:procs.(i) ~cache:cache.(i)
        ~access:(Some access.(i))
    then incr migrations
  done;
  !migrations

(* --- bookkeeping ------------------------------------------------------- *)

let busy_integral t = t.busy

let mem_stats t = (t.hwm, t.nfree, t.nlive, t.ndense)

let conservation_violation t =
  let p = t.platform.Model.Platform.p in
  let eps = 1e-6 in
  let bad = ref None in
  let set msg = if !bad = None then bad := Some msg in
  let c = t.cols in
  (* Kahan sums over the live columns, admission order. *)
  let tp = ref 0. and cp = ref 0. in
  let tx = ref 0. and cx = ref 0. in
  for i = 0 to t.ndense - 1 do
    let s = t.dense_slot.(i) in
    if s >= 0 then begin
      let pr = c.c_procs.(s) and x = c.c_cache.(s) in
      if pr < 0. then
        set
          (Printf.sprintf "job %d has negative processors %g" t.dense.(i).id pr);
      if x < 0. || x > 1. +. eps then
        set
          (Printf.sprintf "job %d has cache fraction %g outside [0,1]"
             t.dense.(i).id x);
      let y = pr -. !cp in
      let tn = !tp +. y in
      cp := tn -. !tp -. y;
      tp := tn;
      let y = x -. !cx in
      let tn = !tx +. y in
      cx := tn -. !tx -. y;
      tx := tn
    end
  done;
  if !tp > p *. (1. +. eps) then
    set
      (Printf.sprintf "processors oversubscribed: sum p_i = %.17g > p = %g" !tp
         p);
  if !tx > 1. +. eps then
    set (Printf.sprintf "cache oversubscribed: sum x_i = %.17g > 1" !tx);
  !bad

let assert_conservation t =
  match conservation_violation t with
  | None -> ()
  | Some msg -> failwith ("State: conservation violated: " ^ msg)
