type job = {
  id : int;
  app : Model.App.t;
  arrival : float;
  alone_time : float;
  mutable remaining : float;
  mutable procs : float;
  mutable cache : float;
  mutable allocated : bool;
  mutable epoch : int;
  mutable migrations : int;
  mutable finish : float option;
  mutable cancelled : bool;
}

type t = {
  platform : Model.Platform.t;
  mutable clock : float;
  mutable live_rev : job list;      (* newest first *)
  mutable finished_rev : job list;  (* newest first *)
  mutable next_id : int;
  mutable busy : float;
}

let create platform =
  { platform; clock = 0.; live_rev = []; finished_rev = []; next_id = 0; busy = 0. }

let platform t = t.platform
let now t = t.clock
let next_id t = t.next_id

let advance t ~to_ =
  if Float.is_nan to_ then invalid_arg "State.advance: NaN time";
  if to_ < t.clock then invalid_arg "State.advance: cannot advance backwards";
  let dt = to_ -. t.clock in
  if dt > 0. then
    List.iter
      (fun job ->
        if job.procs > 0. then begin
          t.busy <- t.busy +. (job.procs *. dt);
          if job.remaining > 0. then begin
            let exe =
              Model.Exec_model.exe ~app:job.app ~platform:t.platform
                ~p:job.procs ~x:job.cache
            in
            job.remaining <- Float.max 0. (job.remaining -. (dt /. exe))
          end
        end)
      t.live_rev;
  t.clock <- to_

let add t ~app =
  let alone_time =
    Model.Exec_model.exe ~app ~platform:t.platform
      ~p:t.platform.Model.Platform.p ~x:1.
  in
  let job =
    {
      id = t.next_id;
      app;
      arrival = t.clock;
      alone_time;
      remaining = 1.;
      procs = 0.;
      cache = 0.;
      allocated = false;
      epoch = 0;
      migrations = 0;
      finish = None;
      cancelled = false;
    }
  in
  t.next_id <- t.next_id + 1;
  t.live_rev <- job :: t.live_rev;
  job

let restore t ~clock ~next_id ~busy =
  if t.live_rev <> [] || t.finished_rev <> [] then
    invalid_arg "State.restore: state is not fresh";
  if Float.is_nan clock || clock < 0. then
    invalid_arg "State.restore: bad clock";
  if next_id < 0 then invalid_arg "State.restore: bad next_id";
  t.clock <- clock;
  t.next_id <- next_id;
  t.busy <- busy

let inject t ~id ~app ~arrival ~remaining ~procs ~cache ~allocated ~epoch
    ~migrations =
  if List.exists (fun j -> j.id = id) t.live_rev then
    invalid_arg "State.inject: duplicate job id";
  (match t.live_rev with
  | j :: _ when j.id >= id ->
    invalid_arg "State.inject: jobs must be injected in id order"
  | _ -> ());
  let alone_time =
    Model.Exec_model.exe ~app ~platform:t.platform
      ~p:t.platform.Model.Platform.p ~x:1.
  in
  let job =
    {
      id;
      app;
      arrival;
      alone_time;
      remaining;
      procs;
      cache;
      allocated;
      epoch;
      migrations;
      finish = None;
      cancelled = false;
    }
  in
  t.live_rev <- job :: t.live_rev;
  if id >= t.next_id then t.next_id <- id + 1;
  job

let retire t job =
  let rest = List.filter (fun j -> j.id <> job.id) t.live_rev in
  if List.length rest = List.length t.live_rev then
    invalid_arg "State: job is not live";
  t.live_rev <- rest;
  t.finished_rev <- job :: t.finished_rev

let complete t job =
  retire t job;
  job.remaining <- 0.;
  job.finish <- Some t.clock;
  job.procs <- 0.;
  job.cache <- 0.

let cancel t job =
  retire t job;
  job.cancelled <- true;
  job.procs <- 0.;
  job.cache <- 0.

let live t =
  let arr = Array.of_list t.live_rev in
  let n = Array.length arr in
  (* live_rev is newest first; arrival order is the reverse. *)
  Array.init n (fun i -> arr.(n - 1 - i))

let finished t = List.rev t.finished_rev
let running t = List.length (List.filter (fun j -> j.procs > 0.) t.live_rev)
let queued t = List.length (List.filter (fun j -> j.procs = 0.) t.live_rev)

let remaining_app job =
  if job.finish <> None || job.cancelled then
    invalid_arg "State.remaining_app: job is finished";
  Model.App.with_w job.app (job.remaining *. job.app.Model.App.w)

let remaining_time ~platform job =
  if job.procs <= 0. then infinity
  else
    job.remaining
    *. Model.Exec_model.exe ~app:job.app ~platform ~p:job.procs ~x:job.cache

let rel_changed a b =
  Float.abs (a -. b) > 1e-9 *. Float.max 1e-30 (Float.max (Float.abs a) (Float.abs b))

let apply _t jobs allocs =
  if Array.length jobs <> Array.length allocs then
    invalid_arg "State.apply: jobs and allocations must have the same length";
  let migrations = ref 0 in
  Array.iteri
    (fun i job ->
      let { Model.Schedule.procs; cache } = allocs.(i) in
      if job.allocated && (rel_changed job.procs procs || rel_changed job.cache cache)
      then begin
        job.migrations <- job.migrations + 1;
        incr migrations
      end;
      job.procs <- procs;
      job.cache <- cache;
      if procs > 0. then job.allocated <- true;
      job.epoch <- job.epoch + 1)
    jobs;
  !migrations

let busy_integral t = t.busy

let conservation_violation t =
  let p = t.platform.Model.Platform.p in
  let eps = 1e-6 in
  let bad = ref None in
  let set msg = if !bad = None then bad := Some msg in
  List.iter
    (fun job ->
      if job.procs < 0. then
        set (Printf.sprintf "job %d has negative processors %g" job.id job.procs);
      if job.cache < 0. || job.cache > 1. +. eps then
        set (Printf.sprintf "job %d has cache fraction %g outside [0,1]" job.id
               job.cache))
    t.live_rev;
  let total_p =
    Util.Floatx.sum (List.map (fun j -> j.procs) t.live_rev)
  and total_x =
    Util.Floatx.sum (List.map (fun j -> j.cache) t.live_rev)
  in
  if total_p > p *. (1. +. eps) then
    set (Printf.sprintf "processors oversubscribed: sum p_i = %.17g > p = %g"
           total_p p);
  if total_x > 1. +. eps then
    set (Printf.sprintf "cache oversubscribed: sum x_i = %.17g > 1" total_x);
  !bad

let assert_conservation t =
  match conservation_violation t with
  | None -> ()
  | Some msg -> failwith ("State: conservation violated: " ^ msg)
