(** The live application set of the online service.

    Each job tracks the fraction of its work still remaining under the
    current [(p_i, x_i)] allocation; progress between events is exact
    under the paper's model: with allocation [(p, x)] held constant, the
    whole application takes [Exe(p, x)] ({!Model.Exec_model.exe}), so an
    interval of length [dt] completes [dt / Exe(p, x)] of the work.
    Integrating progress at every event keeps the state consistent no
    matter when the policy chooses to re-solve.

    Jobs with [procs = 0] are {e queued}: admitted but not yet granted an
    allocation (they make no progress).  The re-solvers see each live job
    as an application with its work scaled by the remaining fraction
    ({!remaining_app}), which is exactly the paper's static problem on
    the residual workload. *)

type job = {
  id : int;                       (** Arrival index, dense from 0. *)
  app : Model.App.t;              (** The original application. *)
  arrival : float;
  alone_time : float;             (** [Exe(p_total, 1)]: runtime alone on
                                      the whole platform (stretch
                                      denominator). *)
  mutable remaining : float;      (** Fraction of [w] left, in [0, 1]. *)
  mutable procs : float;          (** 0 while queued. *)
  mutable cache : float;
  mutable allocated : bool;       (** Ever granted processors. *)
  mutable epoch : int;            (** Bumped on every allocation change. *)
  mutable migrations : int;       (** Allocation changes after the first. *)
  mutable finish : float option;  (** Completion time, once finished. *)
  mutable cancelled : bool;
}

type t

val create : Model.Platform.t -> t
(** Empty state at time 0. *)

val platform : t -> Model.Platform.t
(** The platform the state was created with. *)

val now : t -> float
(** Time the state was last advanced to. *)

val next_id : t -> int
(** The id the next {!add} will assign (the number of jobs ever
    admitted, counting checkpointed ids after a {!restore}). *)

val advance : t -> to_:float -> unit
(** Integrate progress of every running job up to [to_] under the current
    allocations, and accumulate the busy-processor integral (for
    utilization).  Remaining fractions are clamped at 0.
    @raise Invalid_argument when [to_] precedes {!now}. *)

val add : t -> app:Model.App.t -> job
(** Admit an arrival (queued, no allocation) at the current time. *)

val restore : t -> clock:float -> next_id:int -> busy:float -> unit
(** Reset the scalar fields of a {e fresh} state to checkpointed values —
    the first step of rebuilding a live core from a snapshot
    ({!Serve.Snapshot}).  @raise Invalid_argument if the state already
    holds jobs, or on a negative/NaN clock or negative [next_id]. *)

val inject : t ->
  id:int ->
  app:Model.App.t ->
  arrival:float ->
  remaining:float ->
  procs:float ->
  cache:float ->
  allocated:bool ->
  epoch:int ->
  migrations:int ->
  job
(** Re-admit a checkpointed live job with explicit progress and
    allocation, in increasing [id] order.  [alone_time] is recomputed
    from [app] (it is a pure function of the app and platform, so the
    restored value is bit-identical to the original).  Does not advance
    the clock or bump epochs.  @raise Invalid_argument on a duplicate or
    out-of-order id. *)

val complete : t -> job -> unit
(** Mark a job finished at the current time and retire it from the live
    set.  @raise Invalid_argument if the job is not live. *)

val cancel : t -> job -> unit
(** Retire a live job without completion (an explicit departure). *)

val live : t -> job array
(** Live jobs (queued or running) in arrival order.  The array is fresh;
    the jobs are the live mutable records. *)

val finished : t -> job list
(** Retired jobs (completed and cancelled), in retirement order. *)

val running : t -> int
(** Live jobs currently holding processors. *)

val queued : t -> int
(** Live jobs admitted but not yet allocated ([procs = 0]). *)

val remaining_app : job -> Model.App.t
(** The residual application: [app] with work scaled by the remaining
    fraction.  @raise Invalid_argument on a finished job. *)

val remaining_time : platform:Model.Platform.t -> job -> float
(** Time to completion under the job's current allocation; [infinity]
    while queued. *)

val apply : t -> job array -> Model.Schedule.alloc array -> int
(** [apply t jobs allocs] installs a fresh solver allocation on [jobs]
    (same order), bumps every epoch, and returns the number of
    {e migrations}: already-allocated jobs whose processor share or cache
    fraction changed by more than a 1e-9 relative tolerance.
    @raise Invalid_argument on length mismatch. *)

val busy_integral : t -> float
(** [integral of (sum of live procs) dt] since creation. *)

val conservation_violation : t -> string option
(** [None] when the live allocations satisfy the CoSchedCache
    constraints: every [procs >= 0], every [cache in [0, 1]],
    [sum procs <= p] and [sum cache <= 1] (relative tolerance 1e-6).
    Otherwise a description of the violated constraint. *)

val assert_conservation : t -> unit
(** @raise Failure with the {!conservation_violation} message, if any. *)
