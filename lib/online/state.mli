(** The live application set of the online service, in columnar layout.

    Each job tracks the fraction of its work still remaining under the
    current [(p_i, x_i)] allocation; progress between events is exact
    under the paper's model: with allocation [(p, x)] held constant, the
    whole application takes [Exe(p, x)] ({!Model.Exec_model.exe}), so an
    interval of length [dt] completes [dt / Exe(p, x)] of the work.
    Integrating progress at every event keeps the state consistent no
    matter when the policy chooses to re-solve.

    Jobs with [procs = 0] are {e queued}: admitted but not yet granted an
    allocation (they make no progress).  The re-solvers see each live job
    as an application with its work scaled by the remaining fraction
    ({!remaining_app}), which is exactly the paper's static problem on
    the residual workload.

    {2 Layout}

    Hot per-job state (remaining fraction, allocation, cached execution
    rates, the solver's per-app constants) lives in flat float-array
    {e columns} indexed by a slot drawn from a freelist; a {!job} value
    is a handle carrying the immutable identity and its slot.  The event
    loop and the incremental solver walk the columns linearly — one
    arrival touches cache-dense arrays instead of chasing records —
    which is what lets the service hold 10⁵ live jobs (see
    [BENCH_online.json]'s scale sections).  Retiring a job returns its
    slot to the freelist for the next admission; the admission-ordered
    iteration array keeps a hole until {!compact} squeezes it out
    (called lazily, and before every solver {!view}). *)

type job
(** A handle on an admitted job: immutable identity plus a slot into the
    live columns.  Handles stay valid after retirement — the accessors
    below then report the job's final values. *)

type t

val create : Model.Platform.t -> t
(** Empty state at time 0. *)

val platform : t -> Model.Platform.t
(** The platform the state was created with. *)

val now : t -> float
(** Time the state was last advanced to. *)

val next_id : t -> int
(** The id the next {!add} will assign (the number of jobs ever
    admitted, counting checkpointed ids after a {!restore}). *)

(** {2 Per-job accessors} *)

val id : job -> int
(** Arrival index, dense from 0. *)

val app : job -> Model.App.t
(** The original application. *)

val arrival : job -> float
(** Admission time. *)

val alone_time : job -> float
(** [Exe(p_total, 1)]: runtime alone on the whole platform (stretch
    denominator). *)

val remaining : job -> float
(** Fraction of [w] left, in [0, 1] (0 after completion; frozen at its
    last value after cancellation). *)

val procs : job -> float
(** Processor share; 0 while queued and after retirement. *)

val cache : job -> float
(** Cache fraction; 0 while queued and after retirement. *)

val allocated : job -> bool
(** Ever granted processors. *)

val epoch : job -> int
(** Bumped on every allocation change. *)

val migrations : job -> int
(** Allocation changes after the first. *)

val finish : job -> float option
(** Completion time, once finished. *)

val cancelled : job -> bool
(** Whether the job was retired by cancellation. *)

(** {2 Lifecycle} *)

val advance : t -> to_:float -> unit
(** Integrate progress of every running job up to [to_] under the current
    allocations, and accumulate the busy-processor integral (for
    utilization).  Remaining fractions are clamped at 0.
    @raise Invalid_argument when [to_] precedes {!now}. *)

val add : t -> app:Model.App.t -> job
(** Admit an arrival (queued, no allocation) at the current time. *)

val restore : t -> clock:float -> next_id:int -> busy:float -> unit
(** Reset the scalar fields of a {e fresh} state to checkpointed values —
    the first step of rebuilding a live core from a snapshot
    ({!Serve.Snapshot}).  @raise Invalid_argument if the state already
    holds jobs, or on a negative/NaN clock or negative [next_id]. *)

val inject : t ->
  id:int ->
  app:Model.App.t ->
  arrival:float ->
  remaining:float ->
  procs:float ->
  cache:float ->
  allocated:bool ->
  epoch:int ->
  migrations:int ->
  job
(** Re-admit a checkpointed live job with explicit progress and
    allocation, in increasing [id] order.  [alone_time] and the cached
    execution-rate columns are recomputed from [app] (pure functions of
    the app, platform and allocation, so the restored values are
    bit-identical to the originals).  Does not advance the clock or bump
    epochs.  @raise Invalid_argument on a duplicate or out-of-order
    id. *)

val complete : t -> job -> unit
(** Mark a job finished at the current time and retire it from the live
    set.  @raise Invalid_argument if the job is not live. *)

val cancel : t -> job -> unit
(** Retire a live job without completion (an explicit departure). *)

(** {2 Live-set queries} *)

val live : t -> job array
(** Live jobs (queued or running) in arrival order.  The array is fresh;
    the handles are the live jobs. *)

val live_count : t -> int
(** Number of live jobs, without materializing them. *)

val iter_live : t -> (job -> unit) -> unit
(** Visit every live job in arrival order without allocating.  The
    callback may retire the job it is visiting (the completion sweep
    does), but must not admit jobs. *)

val finished : t -> job list
(** Retired jobs (completed and cancelled), in retirement order. *)

val running : t -> int
(** Live jobs currently holding processors. *)

val queued : t -> int
(** Live jobs admitted but not yet allocated ([procs = 0]). *)

val remaining_app : job -> Model.App.t
(** The residual application: [app] with work scaled by the remaining
    fraction.  @raise Invalid_argument on a finished job. *)

val remaining_time : platform:Model.Platform.t -> job -> float
(** Time to completion under the job's current allocation; [infinity]
    while queued (and after retirement).  Reads the cached
    execution-rate column — bit-identical to recomputing
    {!Model.Exec_model.exe} on the current allocation. *)

val min_remaining_time : t -> float
(** Minimum {!remaining_time} over the live set ([infinity] when nothing
    runs), in one column scan. *)

val demand_summary : t -> float * float * float
(** [(used, queued_work, total_work)] over the live set in one column
    scan: the processor shares in use, and the residual work
    [remaining * work_cost] of queued jobs and of all jobs — the inputs
    of the policy's degradation estimate. *)

val apply : t -> job array -> Model.Schedule.alloc array -> int
(** [apply t jobs allocs] installs a fresh solver allocation on [jobs]
    (same order), bumps every epoch, refreshes the cached execution
    rates, and returns the number of {e migrations}: already-allocated
    jobs whose processor share or cache fraction changed by more than a
    1e-9 relative tolerance.  @raise Invalid_argument on length
    mismatch. *)

(** {2 Solver view}

    The incremental solver reads the live set directly from the columns
    instead of materializing one {!Model.App.t} per job per re-solve. *)

type view = {
  v_n : int;  (** Live jobs; positions [0 .. v_n-1] are arrival order. *)
  v_slot : int array;  (** Position to column slot (first [v_n] valid). *)
  v_remaining : float array;  (** Remaining-fraction column. *)
  v_w : float array;  (** App work column. *)
  v_s : float array;  (** App sequential-fraction column. *)
  v_f : float array;  (** App access-frequency column. *)
  v_m0 : float array;  (** App base miss-rate column. *)
  v_c0 : float array;  (** App reference-cache column. *)
  v_fp : float array;  (** App footprint column. *)
  v_d : float array;  (** {!Model.Power_law.d_of} per job. *)
  v_dpow : float array;  (** [d ** (1/alpha)] per job (0 when d = 0). *)
  v_capx : float array;  (** Max useful cache fraction per job. *)
}
(** Column view for the solver: slot-indexed arrays shared with the
    state (do not retain across events), plus the position-to-slot map
    of the compacted live set. *)

val view : t -> view
(** Compact the live set and expose the columns.  Positions are arrival
    (= id) order. *)

val apply_view : t ->
  n:int ->
  procs:float array ->
  cache:float array ->
  access:float array ->
  int
(** Columnar {!apply}: install position-indexed allocations from the
    solver's buffers ([access] is the access cost at the new cache
    fraction, already derived during the solve), returning the migration
    count.  Must follow a {!view} with no interleaved admission or
    retirement.  @raise Invalid_argument if the live set changed. *)

val compact : t -> unit
(** Squeeze retirement holes out of the iteration array now (normally
    lazy).  Exposed for the freelist/compaction invariant tests. *)

val mem_stats : t -> int * int * int * int
(** [(slots_ever, free_slots, live, dense_entries)] — the freelist and
    iteration-array occupancy, for tests and capacity probes.
    [slots_ever = free_slots + live] always; [dense_entries - live] is
    the current hole count. *)

val busy_integral : t -> float
(** [integral of (sum of live procs) dt] since creation. *)

val conservation_violation : t -> string option
(** [None] when the live allocations satisfy the CoSchedCache
    constraints: every [procs >= 0], every [cache in [0, 1]],
    [sum procs <= p] and [sum cache <= 1] (relative tolerance 1e-6).
    Otherwise a description of the violated constraint. *)

val assert_conservation : t -> unit
(** @raise Failure with the {!conservation_violation} message, if any. *)
