type kind =
  | Arrival of Model.App.t
  | Departure of int

type event = { time : float; kind : kind }

type t = { events : event array; arrivals : int; horizon : float }

let of_events list =
  let prev = ref 0. in
  let arrivals = ref 0 in
  List.iter
    (fun ev ->
      if Float.is_nan ev.time || ev.time < 0. || ev.time = infinity then
        invalid_arg "Workload_stream: event times must be finite and >= 0";
      if ev.time < !prev then
        invalid_arg "Workload_stream: events must be in nondecreasing time order";
      prev := ev.time;
      match ev.kind with
      | Arrival _ -> incr arrivals
      | Departure i ->
        if i < 0 || i >= !arrivals then
          invalid_arg
            (Printf.sprintf
               "Workload_stream: departure %d does not reference an earlier \
                arrival"
               i))
    list;
  let events = Array.of_list list in
  let horizon = if Array.length events = 0 then 0. else !prev in
  { events; arrivals = !arrivals; horizon }

let events t = Array.to_list t.events
let arrivals t = t.arrivals
let length t = Array.length t.events
let horizon t = t.horizon

let poisson ~rng ~rate ~apps =
  if not (rate > 0. && Float.is_finite rate) then
    invalid_arg "Workload_stream.poisson: rate must be positive and finite";
  let clock = ref 0. in
  of_events
    (List.map
       (fun app ->
         clock := !clock +. Util.Rng.exponential rng rate;
         { time = !clock; kind = Arrival app })
       (Array.to_list apps))

let mean_alone ~platform apps =
  let alone =
    Array.map
      (fun app ->
        Model.Exec_model.exe ~app ~platform ~p:platform.Model.Platform.p ~x:1.)
      apps
  in
  Util.Stats.mean alone

let poisson_load ~rng ~platform ~load ~dataset n =
  if not (load > 0. && Float.is_finite load) then
    invalid_arg "Workload_stream.poisson_load: load must be positive and finite";
  let apps = Model.Workload.generate ~rng dataset n in
  if n = 0 then of_events []
  else poisson ~rng ~rate:(load /. mean_alone ~platform apps) ~apps

let of_arrivals ~apps times =
  if Array.length apps <> Array.length times then
    invalid_arg "Workload_stream.of_arrivals: apps and times lengths differ";
  of_events
    (List.init (Array.length apps) (fun i ->
         { time = times.(i); kind = Arrival apps.(i) }))

let scenario ~rng ~scenario ~apps =
  of_arrivals ~apps (Stats.Scenario.arrival_times ~rng scenario (Array.length apps))

let sized ~rng ~sizes ~dataset n =
  Stats.Dist.validate sizes;
  let apps = Model.Workload.generate ~rng dataset n in
  Array.map (fun app -> Model.App.with_w app (Stats.Dist.sample sizes rng)) apps

let scenario_load ~rng ~platform ?sizes ~scenario:sc ~dataset n =
  let apps =
    match sizes with
    | None -> Model.Workload.generate ~rng dataset n
    | Some d -> sized ~rng ~sizes:d ~dataset n
  in
  if n = 0 then of_events []
  else begin
    let unit_time = mean_alone ~platform apps in
    let times = Stats.Scenario.arrival_times ~rng sc n in
    of_arrivals ~apps (Array.map (fun t -> t *. unit_time) times)
  end
