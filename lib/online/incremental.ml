type counters = {
  mutable solver_iters : int;
  mutable partition_ops : int;
  mutable resolves : int;
}

let fresh_counters () = { solver_iters = 0; partition_ops = 0; resolves = 0 }

type t = {
  mutable prev_k : float option;
  mutable prev_boundary : int;
  counters : counters;
}

let create () = { prev_k = None; prev_boundary = 0; counters = fresh_counters () }
let counters t = t.counters

let invalidate t =
  t.prev_k <- None;
  t.prev_boundary <- 0

(* --- cold baseline: Algorithm 1 / MinRatio, with counted work ---------- *)

let cold_partition ?counters ~platform apps =
  let tick n = match counters with Some c -> c.partition_ops <- c.partition_ops + n | None -> () in
  let n = Array.length apps in
  let subset = Array.make n true in
  let ratio = Array.map (fun app -> Theory.Dominant.ratio ~platform app) apps in
  let weight = Array.map (fun app -> Theory.Dominant.weight ~platform app) apps in
  (* Mirrors Partition_builder.build Dominant MinRatio: each loop
     iteration re-derives the weight sum (m ops), checks dominance over
     the members (m ops), and scans for the minimum ratio (m ops), so the
     counted cost is the real eviction loop's. *)
  let rec loop () =
    let members = Theory.Dominant.indices subset in
    let m = List.length members in
    if m = 0 then ()
    else begin
      let total = List.fold_left (fun acc i -> acc +. weight.(i)) 0. members in
      tick m;
      let dominant = List.for_all (fun i -> ratio.(i) > total) members in
      tick m;
      if not dominant then begin
        let evict =
          List.fold_left
            (fun best i -> if ratio.(i) < ratio.(best) then i else best)
            (List.hd members) (List.tl members)
        in
        tick m;
        subset.(evict) <- false;
        loop ()
      end
    end
  in
  loop ();
  subset

(* --- warm path: maximal dominant suffix in ratio order ----------------- *)

let warm_partition t ~platform ~apps =
  let c = t.counters in
  let n = Array.length apps in
  let entries =
    Array.init n (fun i ->
        (Theory.Dominant.ratio ~platform apps.(i),
         Theory.Dominant.weight ~platform apps.(i),
         i))
  in
  c.partition_ops <- c.partition_ops + (2 * n);
  Array.sort
    (fun (r1, _, i1) (r2, _, i2) ->
      match Float.compare r1 r2 with 0 -> Int.compare i1 i2 | cmp -> cmp)
    entries;
  (* suffix.(k) = sum of weights of entries k..n-1 *)
  let suffix = Array.make (n + 1) 0. in
  for k = n - 1 downto 0 do
    let _, w, _ = entries.(k) in
    suffix.(k) <- suffix.(k + 1) +. w
  done;
  c.partition_ops <- c.partition_ops + n;
  (* The suffix starting at k is dominant iff its minimum-ratio member —
     entries.(k) itself — beats the suffix weight sum; r_k - S_k is
     nondecreasing in k, so the feasible starts form a suffix of
     positions and the boundary can be walked from its previous value. *)
  let dominant_at k =
    c.partition_ops <- c.partition_ops + 1;
    k >= n || (let r, _, _ = entries.(k) in r > suffix.(k))
  in
  let b = ref (min (max t.prev_boundary 0) n) in
  while !b > 0 && dominant_at (!b - 1) do decr b done;
  while not (dominant_at !b) do incr b done;
  t.prev_boundary <- !b;
  let subset = Array.make n false in
  for k = !b to n - 1 do
    let _, _, i = entries.(k) in
    subset.(i) <- true
  done;
  subset

(* --- full re-solve ----------------------------------------------------- *)

type solution = {
  schedule : Model.Schedule.t;
  k : float;
  subset : Theory.Dominant.subset;
}

type mode = Warm | Cold

let solve t ~mode ~elapsed ~platform ~apps =
  if Array.length apps = 0 then invalid_arg "Incremental.solve: empty instance";
  t.counters.resolves <- t.counters.resolves + 1;
  let subset =
    match mode with
    | Warm -> warm_partition t ~platform ~apps
    | Cold -> cold_partition ~counters:t.counters ~platform apps
  in
  let x = Theory.Dominant.cache_allocation_capped ~platform ~apps subset in
  let warm =
    match (mode, t.prev_k) with
    | Warm, Some k when k -. elapsed > 0. -> Some (k -. elapsed)
    | _ -> None
  in
  let iters = ref 0 in
  let schedule, k = Sched.Equalize.schedule_k ?warm ~iters ~platform ~apps x in
  t.counters.solver_iters <- t.counters.solver_iters + !iters;
  t.prev_k <- Some k;
  { schedule; k; subset }
