type counters = {
  mutable solver_iters : int;
  mutable partition_ops : int;
  mutable resolves : int;
  mutable warm_hits : int;
  mutable cold_fallbacks : int;
}

let fresh_counters () =
  { solver_iters = 0; partition_ops = 0; resolves = 0; warm_hits = 0;
    cold_fallbacks = 0 }

type t = {
  mutable prev_k : float option;
  mutable prev_d : float;
      (* residual parallel demand [sum (1-s_i) c_i] at the last columnar
         solve — the scale behind the predicted warm seed (0 when
         unknown) *)
  mutable prev_boundary : int;
  counters : counters;
  ws : Sched.Workspace.t;
  (* Persistent warm-partition state: unboxed parallel arrays indexed by
     application position, plus the ratio-sorted permutation carried
     from the previous event.  Capacities grow amortised and never
     shrink; [pn] is the instance size at the last warm solve (0 when
     the state is cold). *)
  mutable pn : int;
  mutable ratio : float array;
  mutable weight : float array;
  mutable order : int array;
  mutable suffix : float array;
  mutable mark : bool array;
  (* Columnar-solve scratch, position-indexed (see [solve_state]): cache
     fractions, sequential fractions, residual work costs, access costs,
     processor shares, water-filling shares and the active set. *)
  mutable xbuf : float array;
  mutable sbuf : float array;
  mutable cbuf : float array;
  mutable abuf : float array;
  mutable pbuf : float array;
  mutable shares : float array;
  mutable actv : bool array;
}

let create () =
  {
    prev_k = None;
    prev_d = 0.;
    prev_boundary = 0;
    counters = fresh_counters ();
    ws = Sched.Workspace.create ();
    pn = 0;
    ratio = [||];
    weight = [||];
    order = [||];
    suffix = [||];
    mark = [||];
    xbuf = [||];
    sbuf = [||];
    cbuf = [||];
    abuf = [||];
    pbuf = [||];
    shares = [||];
    actv = [||];
  }

let counters t = t.counters
let prev_demand t = t.prev_d

let reseed t ~prev_k ~prev_d =
  t.prev_k <- prev_k;
  t.prev_d <- prev_d

let invalidate t =
  t.prev_k <- None;
  t.prev_d <- 0.;
  t.prev_boundary <- 0;
  t.pn <- 0

(* --- cold baseline: Algorithm 1 / MinRatio, with counted work ---------- *)

(* MinRatio consumes no randomness; the builder's [rng] parameter is
   satisfied by a shared dummy stream that is never advanced. *)
let dummy_rng = lazy (Util.Rng.create 0)

let cold_partition ?counters ~platform apps =
  let ops =
    match counters with
    | Some c -> Some (fun m -> c.partition_ops <- c.partition_ops + m)
    | None -> None
  in
  Sched.Partition_builder.build ?ops Sched.Partition_builder.Dominant
    Sched.Choice.MinRatio ~rng:(Lazy.force dummy_rng) ~platform ~apps

(* --- warm path: maximal dominant suffix in ratio order ----------------- *)

let ensure_capacity t n =
  if Array.length t.ratio < n then begin
    let cap = max n ((2 * Array.length t.ratio) + 8) in
    t.ratio <- Array.make cap 0.;
    t.weight <- Array.make cap 0.;
    t.order <- Array.make cap 0;
    t.suffix <- Array.make (cap + 1) 0.;
    t.mark <- Array.make cap false;
    t.xbuf <- Array.make cap 0.;
    t.sbuf <- Array.make cap 0.;
    t.cbuf <- Array.make cap 0.;
    t.abuf <- Array.make cap 0.;
    t.pbuf <- Array.make cap 0.;
    t.shares <- Array.make cap 0.;
    t.actv <- Array.make cap false;
    t.pn <- 0 (* the old permutation did not survive the regrowth *)
  end

(* Shared tail of the warm partition: given [t.ratio] and [t.weight]
   filled for positions 0..n-1, repair the carried permutation, restore
   sortedness, rebuild suffix sums and walk the dominant boundary.
   Returns the boundary [b]: sorted positions [b..n-1] are the maximal
   dominant suffix.  Both the apps-based [warm_partition] and the
   columnar [solve_state] funnel through this, so the two paths run the
   same partition arithmetic on the same buffers. *)
let warm_boundary t ~n =
  let c = t.counters in
  let ratio = t.ratio and weightv = t.weight and order = t.order in
  (* Repair the carried permutation into a permutation of 0..n-1: after
     an arrival the new position is appended, after a departure the
     stale positions are dropped and the survivors keep their relative
     order.  (Positions shift across a mid-array removal, so the seed
     can be imperfect for one event; the sort below restores exactness
     regardless — the seed only buys adaptivity.) *)
  if t.pn <> n then begin
    let mark = t.mark in
    let j = ref 0 in
    for k = 0 to t.pn - 1 do
      let v = order.(k) in
      if v < n && not mark.(v) then begin
        order.(!j) <- v;
        (* writes trail reads: [!j <= k] always *)
        mark.(v) <- true;
        incr j
      end
    done;
    for v = 0 to n - 1 do
      if not mark.(v) then begin
        order.(!j) <- v;
        incr j
      end
    done;
    for v = 0 to n - 1 do
      mark.(v) <- false
    done;
    t.pn <- n
  end;
  (* Adaptive insertion sort by (ratio, index) — the total order used by
     the cold eviction loop's MinRatio ties.  Consecutive events disturb
     the order by progress-driven drift and single arrivals/departures,
     so the carried permutation is nearly sorted and this pass is O(n +
     inversions), versus the full sort-from-scratch (with boxed tuple
     entries) the previous implementation paid per event.  A disordered
     permutation — the first solve ever, or right after [invalidate] —
     would make insertion quadratic (minutes at n = 1e5), so when the
     total shift distance blows past a linear budget the pass bails to
     [Array.sort] with the same comparator: the order is total, so the
     resulting permutation — and everything downstream — is identical. *)
  let budget = ref (8 * n) in
  let k = ref 1 in
  while !k < n && !budget >= 0 do
    let v = order.(!k) in
    let rv = ratio.(v) in
    let j = ref (!k - 1) in
    let continue_ = ref true in
    while !continue_ && !j >= 0 do
      let u = order.(!j) in
      let ru = ratio.(u) in
      if ru > rv || (ru = rv && u > v) then begin
        order.(!j + 1) <- u;
        decr j;
        decr budget
      end
      else continue_ := false
    done;
    order.(!j + 1) <- v;
    incr k
  done;
  if !budget < 0 then begin
    let cmp u v =
      match Float.compare ratio.(u) ratio.(v) with
      | 0 -> Int.compare u v
      | cmp -> cmp
    in
    (* [Array.sort] sorts a whole array; [order] is only meaningful on
       positions 0..n-1, so sort a copy of the slice when the scratch is
       larger. *)
    if Array.length order = n then Array.sort cmp order
    else begin
      let slice = Array.sub order 0 n in
      Array.sort cmp slice;
      Array.blit slice 0 order 0 n
    end
  end;
  (* suffix.(k) = sum of weights of sorted entries k..n-1 *)
  let suffix = t.suffix in
  suffix.(n) <- 0.;
  for k = n - 1 downto 0 do
    suffix.(k) <- suffix.(k + 1) +. weightv.(order.(k))
  done;
  c.partition_ops <- c.partition_ops + n;
  (* The suffix starting at k is dominant iff its minimum-ratio member —
     the sorted entry at k itself — beats the suffix weight sum;
     [ratio - suffix sum] is nondecreasing in k, so the feasible starts
     form a suffix of positions and the boundary can be walked from its
     previous value. *)
  let dominant_at k =
    c.partition_ops <- c.partition_ops + 1;
    k >= n || ratio.(order.(k)) > suffix.(k)
  in
  let b = ref (min (max t.prev_boundary 0) n) in
  while !b > 0 && dominant_at (!b - 1) do
    decr b
  done;
  while not (dominant_at !b) do
    incr b
  done;
  t.prev_boundary <- !b;
  !b

let warm_partition t ~platform ~apps =
  let c = t.counters in
  let n = Array.length apps in
  ensure_capacity t n;
  let ratio = t.ratio and weightv = t.weight in
  let alpha = platform.Model.Platform.alpha in
  (* Per-application ratio and weight, exactly Theory.Dominant's
     arithmetic but deriving [d] once instead of once per quantity. *)
  for i = 0 to n - 1 do
    let app = apps.(i) in
    let d = Model.Power_law.d_of ~app ~platform in
    let w = (app.Model.App.w *. app.Model.App.f *. d) ** (1. /. (alpha +. 1.)) in
    let r =
      if d = 0. then if w > 0. then infinity else 0.
      else w /. (d ** (1. /. alpha))
    in
    weightv.(i) <- w;
    ratio.(i) <- r
  done;
  c.partition_ops <- c.partition_ops + (2 * n);
  let b = warm_boundary t ~n in
  let subset = Array.make n false in
  for k = b to n - 1 do
    subset.(t.order.(k)) <- true
  done;
  subset

(* --- full re-solve ----------------------------------------------------- *)

let m_resolves =
  Obs.Metrics.counter ~help:"incremental re-solves run" "incremental.resolves"

let m_warm_hits =
  Obs.Metrics.counter
    ~help:"warm-mode re-solves seeded by a previous makespan"
    "incremental.warm_hits"

let m_cold_falls =
  Obs.Metrics.counter
    ~help:"warm-mode re-solves that fell back to a cold bracket"
    "incremental.cold_fallbacks"

let m_partition_ops =
  Obs.Metrics.counter ~help:"partition-repair operations"
    "incremental.partition_ops"

let m_solver_iters =
  Obs.Metrics.counter ~help:"bisection evaluations spent in re-solves"
    "incremental.solver_iters"

type solution = {
  schedule : Model.Schedule.t;
  k : float;
  subset : Theory.Dominant.subset;
}

type mode = Warm | Cold

let solve t ~mode ~elapsed ~platform ~apps =
  if Array.length apps = 0 then invalid_arg "Incremental.solve: empty instance";
  (* Probes off: [sp] is the null handle, [ops0] is an int read — the
     event loop allocates exactly what it did uninstrumented
     (test/test_obs.ml holds this path to zero extra minor words). *)
  let sp = Obs.Span.start "online.resolve" in
  let ops0 = t.counters.partition_ops in
  t.counters.resolves <- t.counters.resolves + 1;
  let subset =
    match mode with
    | Warm -> warm_partition t ~platform ~apps
    | Cold -> cold_partition ~counters:t.counters ~platform apps
  in
  let weights =
    (* The warm path just derived every weight into its persistent
       buffer; let the capped water-filling reuse them. *)
    match mode with Warm -> Some t.weight | Cold -> None
  in
  let x =
    Theory.Dominant.cache_allocation_capped ?weights ~platform ~apps subset
  in
  let warm =
    match (mode, t.prev_k) with
    | Warm, Some k when k -. elapsed > 0. -> Some (k -. elapsed)
    | _ -> None
  in
  (* Counted unconditionally (plain field increments, no allocation):
     the run's own metrics report warm hits and cold fallbacks whether
     or not probes are on. *)
  (match (mode, warm) with
  | Warm, Some _ -> t.counters.warm_hits <- t.counters.warm_hits + 1
  | Warm, None -> t.counters.cold_fallbacks <- t.counters.cold_fallbacks + 1
  | Cold, _ -> ());
  if Obs.Probe.on () then begin
    Obs.Metrics.incr m_resolves;
    match (mode, warm) with
    | Warm, Some _ -> Obs.Metrics.incr m_warm_hits
    | Warm, None -> Obs.Metrics.incr m_cold_falls
    | Cold, _ -> ()
  end;
  let iters = ref 0 in
  let schedule, k =
    Sched.Equalize.schedule_k ?warm ~iters ~ws:t.ws ~platform ~apps x
  in
  t.counters.solver_iters <- t.counters.solver_iters + !iters;
  t.prev_k <- Some k;
  if Obs.Probe.on () then begin
    Obs.Metrics.add m_partition_ops (t.counters.partition_ops - ops0);
    Obs.Metrics.add m_solver_iters !iters;
    Obs.Span.add_attr sp "mode"
      (match mode with Warm -> "warm" | Cold -> "cold");
    Obs.Span.add_attr sp "n" (string_of_int (Array.length apps));
    Obs.Span.add_attr sp "k" (Printf.sprintf "%.6g" k);
    Obs.Span.stop sp
  end;
  { schedule; k; subset }

(* --- columnar re-solve (the online hot path) --------------------------- *)

(* The warm re-solve rewritten against {!State.view}: every per-position
   pass reads the state's flat columns and writes a position-indexed
   scratch buffer, so a re-solve materializes no [Model.App.t] values at
   all.  The three embarrassingly parallel passes — weight/ratio fill,
   work-cost fill and processor-share fill — optionally shard across an
   {!Exec.Pool}; each shard writes disjoint positions and all reductions
   (demand sum, Kahan processor total) stay sequential, so the sharded
   result is bit-identical to the sequential one whatever the pool size
   or chunking.  [shard_min] keeps small instances on the sequential
   path where fan-out overhead would dominate. *)
let solve_state t ?pool ?(shard_min = 4096) ~elapsed ~state () =
  let v = State.view state in
  let n = v.State.v_n in
  if n = 0 then invalid_arg "Incremental.solve_state: empty instance";
  let sp = Obs.Span.start "online.resolve" in
  let ops0 = t.counters.partition_ops in
  t.counters.resolves <- t.counters.resolves + 1;
  ensure_capacity t n;
  let platform = State.platform state in
  let alpha = platform.Model.Platform.alpha in
  let cs = platform.Model.Platform.cs in
  let ls = platform.Model.Platform.ls in
  let ll = platform.Model.Platform.ll in
  let slot = v.State.v_slot in
  let pool =
    match pool with
    | Some p when n >= shard_min && Exec.Pool.size p > 0 -> Some p
    | _ -> None
  in
  let shard f =
    match pool with Some p -> Exec.Pool.run_chunks p ~n f | None -> f 0 n
  in
  let ratio = t.ratio and weightv = t.weight in
  let xbuf = t.xbuf and sbuf = t.sbuf and cbuf = t.cbuf in
  let abuf = t.abuf and pbuf = t.pbuf in
  (* Pass 1 — dominant-partition weight and ratio per position, exactly
     [warm_partition]'s arithmetic on the residual application
     [w = remaining * w0]; [d] and [d ** (1/alpha)] come cached from the
     state columns. *)
  shard (fun lo hi ->
      for i = lo to hi - 1 do
        let s = slot.(i) in
        let d = v.State.v_d.(s) in
        let w =
          (v.State.v_remaining.(s) *. v.State.v_w.(s) *. v.State.v_f.(s) *. d)
          ** (1. /. (alpha +. 1.))
        in
        let r =
          if d = 0. then if w > 0. then infinity else 0.
          else w /. v.State.v_dpow.(s)
        in
        weightv.(i) <- w;
        ratio.(i) <- r
      done);
  t.counters.partition_ops <- t.counters.partition_ops + (2 * n);
  let b = warm_boundary t ~n in
  (* Capped water-filling over the dominant suffix —
     {!Theory.Dominant.cache_allocation_capped} verbatim, with the caps
     read from the [v_capx] column and the active set / share scratch
     reused across re-solves. *)
  let actv = t.actv and shares = t.shares in
  let order = t.order in
  for i = 0 to n - 1 do
    actv.(i) <- false;
    xbuf.(i) <- 0.
  done;
  for k = b to n - 1 do
    actv.(order.(k)) <- true
  done;
  let budget = ref 1. in
  let continue_ = ref true in
  while !continue_ do
    let total = ref 0. in
    for i = 0 to n - 1 do
      if actv.(i) then total := !total +. weightv.(i)
    done;
    if !total <= 0. || !budget <= 0. then begin
      for i = 0 to n - 1 do
        if actv.(i) then xbuf.(i) <- 0.
      done;
      continue_ := false
    end
    else begin
      for i = 0 to n - 1 do
        if actv.(i) then shares.(i) <- !budget *. weightv.(i) /. !total
      done;
      let clamped = ref false in
      for i = 0 to n - 1 do
        if actv.(i) then begin
          let cap = v.State.v_capx.(slot.(i)) in
          if shares.(i) >= cap then begin
            xbuf.(i) <- cap;
            budget := !budget -. cap;
            actv.(i) <- false;
            clamped := true
          end
        end
      done;
      if not !clamped then begin
        for i = 0 to n - 1 do
          if actv.(i) then xbuf.(i) <- shares.(i)
        done;
        continue_ := false
      end
    end
  done;
  (* Pass 2 — access and residual work cost at the chosen cache split
     (the Eq. (2) chain inlined over the columns), plus the sequential
     fractions the root-finder reads. *)
  shard (fun lo hi ->
      for i = lo to hi - 1 do
        let s = slot.(i) in
        let x = xbuf.(i) in
        let eff = Float.min (x *. cs) v.State.v_fp.(s) in
        let m0 = v.State.v_m0.(s) in
        let miss =
          if m0 = 0. then 0.
          else if eff = 0. then 1.
          else Float.min 1. (m0 *. ((v.State.v_c0.(s) /. eff) ** alpha))
        in
        let access = 1. +. (v.State.v_f.(s) *. (ls +. (ll *. miss))) in
        abuf.(i) <- access;
        cbuf.(i) <- v.State.v_remaining.(s) *. v.State.v_w.(s) *. access;
        sbuf.(i) <- v.State.v_s.(s)
      done);
  (* Residual parallel demand [D = sum (1-s_i) c_i], sequentially, in
     position order — the makespan scales near-linearly with it, so
     [prev_k * D/prev_D] predicts the new root far better than ageing
     the old one by wall-clock progress. *)
  let d_tot = ref 0. in
  for i = 0 to n - 1 do
    d_tot := !d_tot +. ((1. -. sbuf.(i)) *. cbuf.(i))
  done;
  let warm =
    match t.prev_k with
    | Some pk ->
      let predicted =
        if t.prev_d > 0. && !d_tot > 0. then pk *. (!d_tot /. t.prev_d)
        else pk -. elapsed
      in
      if Float.is_finite predicted && predicted > 0. then Some predicted
      else None
    | None -> None
  in
  (match warm with
  | Some _ -> t.counters.warm_hits <- t.counters.warm_hits + 1
  | None -> t.counters.cold_fallbacks <- t.counters.cold_fallbacks + 1);
  if Obs.Probe.on () then begin
    Obs.Metrics.incr m_resolves;
    match warm with
    | Some _ -> Obs.Metrics.incr m_warm_hits
    | None -> Obs.Metrics.incr m_cold_falls
  end;
  let iters = ref 0 in
  let k =
    Sched.Equalize.solve_cols ?warm ~iters ?pool ~platform ~s:sbuf ~costs:cbuf
      ~n ()
  in
  t.counters.solver_iters <- t.counters.solver_iters + !iters;
  t.prev_k <- Some k;
  t.prev_d <- !d_tot;
  (* Pass 3 — equalising processor shares [p_i = (1-s_i)/(K/c_i - s_i)],
     then the exact-conservation rescale with the same Kahan total as
     {!Sched.Equalize.schedule_k}. *)
  shard (fun lo hi ->
      for i = lo to hi - 1 do
        let denom = (k /. cbuf.(i)) -. sbuf.(i) in
        pbuf.(i) <- (if denom <= 0. then infinity else (1. -. sbuf.(i)) /. denom)
      done);
  let total = Util.Floatx.sum_array ~n pbuf in
  let factor = platform.Model.Platform.p /. total in
  for i = 0 to n - 1 do
    pbuf.(i) <- pbuf.(i) *. factor
  done;
  let migrations =
    State.apply_view state ~n ~procs:pbuf ~cache:xbuf ~access:abuf
  in
  if Obs.Probe.on () then begin
    Obs.Metrics.add m_partition_ops (t.counters.partition_ops - ops0);
    Obs.Metrics.add m_solver_iters !iters;
    Obs.Span.add_attr sp "mode" "warm";
    Obs.Span.add_attr sp "n" (string_of_int n);
    Obs.Span.add_attr sp "k" (Printf.sprintf "%.6g" k);
    Obs.Span.stop sp
  end;
  (k, migrations)
