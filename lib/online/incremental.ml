type counters = {
  mutable solver_iters : int;
  mutable partition_ops : int;
  mutable resolves : int;
  mutable warm_hits : int;
  mutable cold_fallbacks : int;
}

let fresh_counters () =
  { solver_iters = 0; partition_ops = 0; resolves = 0; warm_hits = 0;
    cold_fallbacks = 0 }

type t = {
  mutable prev_k : float option;
  mutable prev_boundary : int;
  counters : counters;
  ws : Sched.Workspace.t;
  (* Persistent warm-partition state: unboxed parallel arrays indexed by
     application position, plus the ratio-sorted permutation carried
     from the previous event.  Capacities grow amortised and never
     shrink; [pn] is the instance size at the last warm solve (0 when
     the state is cold). *)
  mutable pn : int;
  mutable ratio : float array;
  mutable weight : float array;
  mutable order : int array;
  mutable suffix : float array;
  mutable mark : bool array;
}

let create () =
  {
    prev_k = None;
    prev_boundary = 0;
    counters = fresh_counters ();
    ws = Sched.Workspace.create ();
    pn = 0;
    ratio = [||];
    weight = [||];
    order = [||];
    suffix = [||];
    mark = [||];
  }

let counters t = t.counters

let invalidate t =
  t.prev_k <- None;
  t.prev_boundary <- 0;
  t.pn <- 0

(* --- cold baseline: Algorithm 1 / MinRatio, with counted work ---------- *)

(* MinRatio consumes no randomness; the builder's [rng] parameter is
   satisfied by a shared dummy stream that is never advanced. *)
let dummy_rng = lazy (Util.Rng.create 0)

let cold_partition ?counters ~platform apps =
  let ops =
    match counters with
    | Some c -> Some (fun m -> c.partition_ops <- c.partition_ops + m)
    | None -> None
  in
  Sched.Partition_builder.build ?ops Sched.Partition_builder.Dominant
    Sched.Choice.MinRatio ~rng:(Lazy.force dummy_rng) ~platform ~apps

(* --- warm path: maximal dominant suffix in ratio order ----------------- *)

let ensure_capacity t n =
  if Array.length t.ratio < n then begin
    let cap = max n ((2 * Array.length t.ratio) + 8) in
    t.ratio <- Array.make cap 0.;
    t.weight <- Array.make cap 0.;
    t.order <- Array.make cap 0;
    t.suffix <- Array.make (cap + 1) 0.;
    t.mark <- Array.make cap false;
    t.pn <- 0 (* the old permutation did not survive the regrowth *)
  end

let warm_partition t ~platform ~apps =
  let c = t.counters in
  let n = Array.length apps in
  ensure_capacity t n;
  let ratio = t.ratio and weightv = t.weight and order = t.order in
  let alpha = platform.Model.Platform.alpha in
  (* Per-application ratio and weight, exactly Theory.Dominant's
     arithmetic but deriving [d] once instead of once per quantity. *)
  for i = 0 to n - 1 do
    let app = apps.(i) in
    let d = Model.Power_law.d_of ~app ~platform in
    let w = (app.Model.App.w *. app.Model.App.f *. d) ** (1. /. (alpha +. 1.)) in
    let r =
      if d = 0. then if w > 0. then infinity else 0.
      else w /. (d ** (1. /. alpha))
    in
    weightv.(i) <- w;
    ratio.(i) <- r
  done;
  c.partition_ops <- c.partition_ops + (2 * n);
  (* Repair the carried permutation into a permutation of 0..n-1: after
     an arrival the new position is appended, after a departure the
     stale positions are dropped and the survivors keep their relative
     order.  (Positions shift across a mid-array removal, so the seed
     can be imperfect for one event; the sort below restores exactness
     regardless — the seed only buys adaptivity.) *)
  if t.pn <> n then begin
    let mark = t.mark in
    let j = ref 0 in
    for k = 0 to t.pn - 1 do
      let v = order.(k) in
      if v < n && not mark.(v) then begin
        order.(!j) <- v;
        (* writes trail reads: [!j <= k] always *)
        mark.(v) <- true;
        incr j
      end
    done;
    for v = 0 to n - 1 do
      if not mark.(v) then begin
        order.(!j) <- v;
        incr j
      end
    done;
    for v = 0 to n - 1 do
      mark.(v) <- false
    done;
    t.pn <- n
  end;
  (* Adaptive insertion sort by (ratio, index) — the total order used by
     the cold eviction loop's MinRatio ties.  Consecutive events disturb
     the order by progress-driven drift and single arrivals/departures,
     so the carried permutation is nearly sorted and this pass is O(n +
     inversions), versus the full sort-from-scratch (with boxed tuple
     entries) the previous implementation paid per event. *)
  for k = 1 to n - 1 do
    let v = order.(k) in
    let rv = ratio.(v) in
    let j = ref (k - 1) in
    let continue_ = ref true in
    while !continue_ && !j >= 0 do
      let u = order.(!j) in
      let ru = ratio.(u) in
      if ru > rv || (ru = rv && u > v) then begin
        order.(!j + 1) <- u;
        decr j
      end
      else continue_ := false
    done;
    order.(!j + 1) <- v
  done;
  (* suffix.(k) = sum of weights of sorted entries k..n-1 *)
  let suffix = t.suffix in
  suffix.(n) <- 0.;
  for k = n - 1 downto 0 do
    suffix.(k) <- suffix.(k + 1) +. weightv.(order.(k))
  done;
  c.partition_ops <- c.partition_ops + n;
  (* The suffix starting at k is dominant iff its minimum-ratio member —
     the sorted entry at k itself — beats the suffix weight sum;
     [ratio - suffix sum] is nondecreasing in k, so the feasible starts
     form a suffix of positions and the boundary can be walked from its
     previous value. *)
  let dominant_at k =
    c.partition_ops <- c.partition_ops + 1;
    k >= n || ratio.(order.(k)) > suffix.(k)
  in
  let b = ref (min (max t.prev_boundary 0) n) in
  while !b > 0 && dominant_at (!b - 1) do
    decr b
  done;
  while not (dominant_at !b) do
    incr b
  done;
  t.prev_boundary <- !b;
  let subset = Array.make n false in
  for k = !b to n - 1 do
    subset.(order.(k)) <- true
  done;
  subset

(* --- full re-solve ----------------------------------------------------- *)

let m_resolves =
  Obs.Metrics.counter ~help:"incremental re-solves run" "incremental.resolves"

let m_warm_hits =
  Obs.Metrics.counter
    ~help:"warm-mode re-solves seeded by a previous makespan"
    "incremental.warm_hits"

let m_cold_falls =
  Obs.Metrics.counter
    ~help:"warm-mode re-solves that fell back to a cold bracket"
    "incremental.cold_fallbacks"

let m_partition_ops =
  Obs.Metrics.counter ~help:"partition-repair operations"
    "incremental.partition_ops"

let m_solver_iters =
  Obs.Metrics.counter ~help:"bisection evaluations spent in re-solves"
    "incremental.solver_iters"

type solution = {
  schedule : Model.Schedule.t;
  k : float;
  subset : Theory.Dominant.subset;
}

type mode = Warm | Cold

let solve t ~mode ~elapsed ~platform ~apps =
  if Array.length apps = 0 then invalid_arg "Incremental.solve: empty instance";
  (* Probes off: [sp] is the null handle, [ops0] is an int read — the
     event loop allocates exactly what it did uninstrumented
     (test/test_obs.ml holds this path to zero extra minor words). *)
  let sp = Obs.Span.start "online.resolve" in
  let ops0 = t.counters.partition_ops in
  t.counters.resolves <- t.counters.resolves + 1;
  let subset =
    match mode with
    | Warm -> warm_partition t ~platform ~apps
    | Cold -> cold_partition ~counters:t.counters ~platform apps
  in
  let weights =
    (* The warm path just derived every weight into its persistent
       buffer; let the capped water-filling reuse them. *)
    match mode with Warm -> Some t.weight | Cold -> None
  in
  let x =
    Theory.Dominant.cache_allocation_capped ?weights ~platform ~apps subset
  in
  let warm =
    match (mode, t.prev_k) with
    | Warm, Some k when k -. elapsed > 0. -> Some (k -. elapsed)
    | _ -> None
  in
  (* Counted unconditionally (plain field increments, no allocation):
     the run's own metrics report warm hits and cold fallbacks whether
     or not probes are on. *)
  (match (mode, warm) with
  | Warm, Some _ -> t.counters.warm_hits <- t.counters.warm_hits + 1
  | Warm, None -> t.counters.cold_fallbacks <- t.counters.cold_fallbacks + 1
  | Cold, _ -> ());
  if Obs.Probe.on () then begin
    Obs.Metrics.incr m_resolves;
    match (mode, warm) with
    | Warm, Some _ -> Obs.Metrics.incr m_warm_hits
    | Warm, None -> Obs.Metrics.incr m_cold_falls
    | Cold, _ -> ()
  end;
  let iters = ref 0 in
  let schedule, k =
    Sched.Equalize.schedule_k ?warm ~iters ~ws:t.ws ~platform ~apps x
  in
  t.counters.solver_iters <- t.counters.solver_iters + !iters;
  t.prev_k <- Some k;
  if Obs.Probe.on () then begin
    Obs.Metrics.add m_partition_ops (t.counters.partition_ops - ops0);
    Obs.Metrics.add m_solver_iters !iters;
    Obs.Span.add_attr sp "mode"
      (match mode with Warm -> "warm" | Cold -> "cold");
    Obs.Span.add_attr sp "n" (string_of_int (Array.length apps));
    Obs.Span.add_attr sp "k" (Printf.sprintf "%.6g" k);
    Obs.Span.stop sp
  end;
  { schedule; k; subset }
