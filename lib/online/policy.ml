type t =
  | Every_event
  | Batched of int
  | Threshold of float

let validate = function
  | Every_event -> ()
  | Batched k ->
    if k < 1 then invalid_arg "Policy: batched interval must be >= 1"
  | Threshold eps ->
    if Float.is_nan eps || eps < 0. then
      invalid_arg "Policy: threshold must be >= 0"

let name = function
  | Every_event -> "every-event"
  | Batched k -> Printf.sprintf "batched:%d" k
  | Threshold eps -> Printf.sprintf "threshold:%g" eps

let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let policy =
    match String.index_opt s ':' with
    | None -> (
      match s with
      | "every-event" | "everyevent" | "every" -> Every_event
      | _ -> invalid_arg ("Policy.of_string: unknown policy " ^ s))
    | Some i -> (
      let head = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match head with
      | "batched" -> (
        match int_of_string_opt arg with
        | Some k -> Batched k
        | None ->
          invalid_arg ("Policy.of_string: batched expects an integer, got " ^ arg))
      | "threshold" -> (
        match float_of_string_opt arg with
        | Some eps -> Threshold eps
        | None ->
          invalid_arg ("Policy.of_string: threshold expects a float, got " ^ arg))
      | _ -> invalid_arg ("Policy.of_string: unknown policy " ^ s))
  in
  validate policy;
  policy

let defaults = [ Every_event; Batched 4; Threshold 0.1 ]

let should_resolve policy ~events_pending ~degradation =
  match policy with
  | Every_event -> true
  | Batched k -> events_pending >= k
  | Threshold eps -> degradation () > eps
