(** Re-solve policies: when the online service recomputes the
    co-schedule.

    Every re-solve reallocates processors and cache across the whole live
    set, so it costs solver work {e and} migrations; deferring re-solves
    leaves arrivals queued and freed capacity idle.  The three policies
    span that trade-off:

    - [Every_event] re-solves at every arrival, departure and completion:
      best response time, most migrations;
    - [Batched k] re-solves once [k] events have accumulated since the
      last solve;
    - [Threshold eps] re-solves when the predicted relative makespan
      degradation of {e not} re-solving exceeds [eps].  The estimate is
      deliberately cheap (no trial solve): the fraction of the platform
      sitting idle plus the share of live work that is queued and making
      no progress — both directly inflate the achievable horizon by the
      same relative amount to first order.

    Whatever the policy, the service forces a re-solve when jobs are
    queued and nothing is running (otherwise the system would stall), so
    [Batched] and [Threshold] degrade response time but never wedge. *)

type t =
  | Every_event
  | Batched of int        (** Re-solve every [k >= 1] events. *)
  | Threshold of float    (** Re-solve when predicted relative makespan
                              degradation exceeds [eps >= 0]. *)

val name : t -> string
(** "every-event", "batched:K", "threshold:EPS". *)

val of_string : string -> t
(** Inverse of {!name}, case-insensitive; validates the parameter.
    @raise Invalid_argument on unknown names or bad parameters. *)

val validate : t -> unit
(** @raise Invalid_argument on [Batched k] with [k < 1], or
    [Threshold eps] with [eps] negative or NaN. *)

val defaults : t list
(** The spread exercised by benches and smokes:
    [Every_event; Batched 4; Threshold 0.1]. *)

val should_resolve :
  t -> events_pending:int -> degradation:(unit -> float) -> bool
(** Decision at one event.  [events_pending] counts events since the last
    solve (including the current one); [degradation] lazily computes the
    estimate described above (only forced by [Threshold]). *)
