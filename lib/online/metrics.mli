(** Service-level metrics of one online run.

    Response time is completion minus arrival; stretch normalises it by
    the job's runtime alone on the whole platform (so 1 is the
    ideal-isolation floor); utilization is the busy-processor integral
    over [p * makespan].  The solver counters come straight from
    {!Incremental.counters}, so warm-vs-cold comparisons are apples to
    apples. *)

type t = {
  jobs : int;               (** Arrivals admitted. *)
  completed : int;
  cancelled : int;
  events : int;             (** Arrivals + effective departures +
                                completion sweeps handled. *)
  resolves : int;
  forced_resolves : int;    (** Re-solves forced to avoid starvation
                                (queued jobs, nothing running). *)
  migrations : int;
  solver_iters : int;
  partition_ops : int;
  warm_hits : int;          (** Warm solves seeded by an aged previous
                                makespan ({!Incremental.counters}). *)
  cold_fallbacks : int;     (** Warm solves that fell back to the cold
                                bisection bracket. *)
  makespan : float;         (** Time the last job left the system. *)
  mean_response : float;
  max_response : float;
  mean_stretch : float;
  max_stretch : float;
  utilization : float;      (** Busy integral / (p * makespan); 0 when
                                nothing ran. *)
}

val render : label:string -> t -> string
(** Two-column table via {!Util.Table}. *)

val to_json : t -> string
(** Flat JSON object with the fields above (snake_case keys, [%.17g]
    floats) — one entry of [BENCH_online.json]. *)
