type t = {
  queue : handler Event_queue.t;
  mutable clock : float;
  mutable processed : int;
}

and handler = t -> unit

let create () = { queue = Event_queue.create (); clock = 0.; processed = 0 }
let now t = t.clock

let schedule t ~at handler =
  if Float.is_nan at then invalid_arg "Engine.schedule: NaN time";
  if at < t.clock then invalid_arg "Engine.schedule: cannot schedule in the past";
  Event_queue.push t.queue ~time:at handler

let schedule_after t ~delay handler =
  if not (delay >= 0.) then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) handler

let run ?until t =
  let horizon = Option.value ~default:infinity until in
  let rec loop () =
    match Event_queue.peek t.queue with
    | None -> ()
    | Some (time, _) when time > horizon -> t.clock <- horizon
    | Some _ ->
      (match Event_queue.pop t.queue with
      | None -> ()
      | Some (time, handler) ->
        t.clock <- time;
        t.processed <- t.processed + 1;
        handler t);
      loop ()
  in
  loop ()

let advance_to t ~to_ =
  if Float.is_nan to_ then invalid_arg "Engine.advance_to: NaN time";
  run ~until:to_ t;
  (* [run ~until] only moves the clock when an event beyond the horizon
     remains queued; a stepwise driver needs the clock at [to_] even
     when the queue ran dry, so later relative schedules anchor at the
     driver's notion of now. *)
  if to_ > t.clock then t.clock <- to_

let events_processed t = t.processed
let pending t = Event_queue.length t.queue
let next_time t = Option.map fst (Event_queue.peek t.queue)
