(** Discrete-event replay of a co-schedule.

    The paper evaluates schedules purely analytically (Eq. 2).  This
    simulator executes a {!Model.Schedule.t} as a fluid discrete-event
    process — each application has a sequential phase of [s w] operations
    followed by a parallel phase of [(1-s) w] operations running [p_i]-way
    — and reports observed completion times.  Uses:

    - {b validation}: with default options the observed times must equal
      the analytical [Exe_i] to solver precision (tested);
    - {b work-conserving extension}: optionally, processors (and cache)
      freed by finished applications are redistributed to the survivors,
      quantifying what the static model leaves on the table;
    - {b robustness}: optional per-application cost perturbation measures
      the sensitivity of the makespan to model misestimation. *)

type options = {
  redistribute_procs : bool;
      (** Scale survivors' processor shares to fill the platform whenever
          an application finishes.  Default [false]. *)
  redistribute_cache : bool;
      (** Likewise rescale survivors' cache fractions to sum to 1
          (proportionally), re-deriving their miss rates.  Default
          [false]. *)
  cost_perturbation : (Util.Rng.t * float) option;
      (** [(rng, sigma)]: multiply each application's per-operation cost
          by an independent lognormal factor [exp(sigma * N(0,1))].
          Default [None]. *)
}

val default_options : options
(** No redistribution, no perturbation: the faithful analytical replay. *)

type event = { time : float; finished : int }
(** One completion: the finishing application's index and when. *)

type outcome = {
  finish_times : float array;
  makespan : float;
  events : event list;   (** Completions in time order. *)
}

val run : ?options:options -> Model.Schedule.t -> outcome
(** Replay the schedule.  Every application must have positive processors.
    @raise Invalid_argument otherwise. *)

val model_error : Model.Schedule.t -> float
(** Largest relative difference between simulated and analytical
    completion times under default options — the model-validation metric
    reported in EXPERIMENTS.md (should be at solver precision). *)
