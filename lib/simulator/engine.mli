(** A minimal discrete-event simulation engine.

    Events are thunks scheduled at absolute times; handlers may schedule
    further events.  Time never goes backwards: scheduling in the past
    raises.  The co-schedule simulator drives its completion events
    through this engine; it is exposed (and tested) independently because
    it is generally useful. *)

type t

val create : unit -> t
(** An engine with an empty queue at time 0. *)

val now : t -> float
(** Current simulation time; 0 before the first event. *)

val schedule : t -> at:float -> (t -> unit) -> unit
(** [schedule t ~at handler] enqueues [handler] to run at time [at].
    @raise Invalid_argument if [at] is NaN or earlier than [now t]. *)

val schedule_after : t -> delay:float -> (t -> unit) -> unit
(** Relative variant; [delay >= 0]. *)

val run : ?until:float -> t -> unit
(** Process events in time order until the queue drains, or until the
    first event strictly beyond [until] (which stays queued; [now]
    advances to [until] in that case). *)

val advance_to : t -> to_:float -> unit
(** Process every event due at or before [to_], then set the clock to
    [to_] (clamped never to go backwards) even if the queue is empty —
    unlike {!run}, which leaves the clock at the last event when the
    queue drains.  Stepwise drivers (the online service's live core) use
    this so relative schedules anchor at the external notion of now.
    @raise Invalid_argument on a NaN [to_]. *)

val events_processed : t -> int
(** Handlers executed so far. *)

val pending : t -> int
(** Number of events still queued, without draining them.  The online
    co-scheduling driver uses this to decide whether a forced re-solve is
    needed after the queue runs dry. *)

val next_time : t -> float option
(** Timestamp of the earliest queued event ([None] when the queue is
    empty).  A peek: the event stays queued. *)
