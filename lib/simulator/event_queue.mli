(** Priority queue of timestamped events (binary min-heap).

    The discrete-event engine pops events in nondecreasing time order;
    ties are broken by insertion order (FIFO), which keeps simulations
    deterministic. *)

type 'a t

val create : unit -> 'a t
(** An empty queue. *)

val is_empty : 'a t -> bool
(** No events queued. *)

val length : 'a t -> int
(** Events currently queued. *)

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on a NaN time. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek : 'a t -> (float * 'a) option
(** The earliest event without removing it. *)

val clear : 'a t -> unit
(** Drop every queued event. *)
