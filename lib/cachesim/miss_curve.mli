(** Miss-rate curves and power-law calibration.

    Ties the substrate together: simulate a trace once ({!Mattson}),
    sample the miss rate at log-spaced capacities, fit Eq. (1)'s power law
    in log–log space, and package the result as a {!Model.App.t} — the
    same artefact the paper produced with PEBIL for Table 2. *)

val log_spaced : min:int -> max:int -> points:int -> int array
(** Distinct, increasing, roughly log-spaced integer capacities from [min]
    to [max] inclusive.  @raise Invalid_argument unless
    [1 <= min <= max] and [points >= 2]. *)

type curve = {
  histogram : Mattson.histogram;
  points : (int * float) array;   (** (capacity in blocks, miss rate). *)
}

val of_trace : Trace.t -> capacities:int array -> curve
(** Simulate the trace once with {!Mattson} and sample its miss rate at
    each capacity (in blocks).  Cost is one pass over the trace, not one
    per capacity. *)

type calibration = {
  fit : Util.Regress.power_fit;   (** [m0] at [c0_blocks], exponent, R². *)
  c0_blocks : int;                (** Reference capacity of the fit. *)
  curve : curve;
}

val calibrate : ?c0_blocks:int -> Trace.t -> capacities:int array -> calibration
(** Fit the power law through the sampled curve.  [c0_blocks] defaults to
    the largest sampled capacity with a nonzero unsaturated miss rate.
    @raise Invalid_argument when fewer than two usable points exist
    (e.g. a purely streaming trace that always misses). *)

val to_app :
  ?name:string -> ?s:float -> ?block_size:int -> w:float -> f:float ->
  calibration -> Model.App.t
(** Package a calibration as a model application: [m0] is the fitted rate
    at [c0 = c0_blocks * block_size] bytes ([block_size] defaults to 64),
    and the footprint is the trace's distinct-block span in bytes.
    [w] and [f] (operation count and access frequency) come from the
    workload definition, as they did for PEBIL's instruction counts. *)
