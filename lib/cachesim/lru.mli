(** Fully associative LRU cache simulation.

    The model assumes the small storage is "governed by a LRU replacement
    policy" (Section 3).  This is the reference simulator: O(1) amortised
    per access via a hash table over an intrusive doubly linked list.
    {!Mattson} computes the same miss counts for {e all} capacities in one
    pass; tests cross-check the two. *)

type t

val create : capacity:int -> t
(** An empty cache holding [capacity] blocks.  @raise Invalid_argument if
    [capacity <= 0]. *)

val access : t -> int -> bool
(** [access t block] touches [block]; returns [true] on hit.  On a miss
    the block is inserted, evicting the least recently used one when
    full. *)

val hits : t -> int
(** Accesses that found their block resident. *)

val misses : t -> int
(** Accesses that did not (and therefore inserted the block). *)

val accesses : t -> int
(** Total accesses, [hits + misses]. *)

val occupancy : t -> int
(** Blocks currently resident. *)

val miss_rate : t -> float
(** [misses / accesses]; 0 before any access. *)

val contains : t -> int -> bool
(** Residency check without touching recency. *)

val reset : t -> unit
(** Empty the cache and zero the counters. *)

val run : capacity:int -> Trace.t -> int
(** Misses incurred by a trace on a fresh cache of the given capacity. *)
