(** Way-partitioned shared cache — an Intel Cache Allocation Technology
    analogue.

    The paper's premise is that partitioning the LLC gives each
    co-scheduled application an interference-free cache slice.  This
    simulator models exactly that mechanism: a set-associative cache whose
    ways are divided among tenants; each tenant looks up and evicts only
    within its own ways.  Two properties are testable (and tested):

    - {b isolation}: a tenant's hit/miss sequence is identical to running
      it alone on a private cache with its ways;
    - {b no sharing}: the model's pessimistic assumption (Section 3) that
      accesses are never shared across applications holds by
      construction. *)

type t

val create : sets:int -> ways:int -> tenants:int -> t
(** All positive.  Initially no tenant owns any way. *)

val assign : t -> tenant:int -> way_count:int -> unit
(** Give the tenant the next [way_count] unassigned ways (contiguous
    allocation, as CAT bitmasks typically are).
    @raise Invalid_argument if the tenant is out of range, already has
    ways, or not enough ways remain. *)

val assign_fractions : t -> float array -> unit
(** Divide the ways according to cache fractions (one per tenant, summing
    to at most 1), rounding down; a tenant whose share rounds to zero ways
    gets none (its accesses always miss — the [x_i = 0] regime).
    @raise Invalid_argument if the array length differs from the tenant
    count or fractions are invalid. *)

val access : t -> tenant:int -> int -> bool
(** [true] on hit.  A tenant with no ways always misses (bypass).
    @raise Invalid_argument on an out-of-range tenant. *)

val tenant_hits : t -> int -> int
(** Hits recorded for the tenant since creation. *)

val tenant_misses : t -> int -> int
(** Misses recorded for the tenant since creation. *)

val tenant_accesses : t -> int -> int
(** Total accesses by the tenant, hits plus misses. *)

val tenant_miss_rate : t -> int -> float
(** Per-tenant [misses / accesses]; 0 before the tenant's first access. *)

val tenant_ways : t -> int -> int
(** Ways currently assigned to the tenant (0 if never assigned). *)

val run_interleaved :
  t -> (int * Trace.t) array -> schedule:[ `Round_robin | `Concatenated ] -> unit
(** Feed several [(tenant, trace)] streams through the cache, either
    round-robin one access at a time (concurrent execution) or one stream
    after the other.  Under strict partitioning both schedules produce
    identical per-tenant miss counts — the isolation property. *)
