(** Set-associative cache with per-set LRU replacement.

    Real LLCs are set-associative; the fully associative model (and the
    power law built on it) is an idealisation.  This simulator quantifies
    the gap and underlies the way-partitioned multi-tenant cache of
    {!Partition}. *)

type t

val create : sets:int -> ways:int -> t
(** [sets] and [ways] must be positive; capacity is [sets * ways] blocks.
    Blocks map to set [block mod sets]. *)

val capacity : t -> int
(** [sets * ways], in blocks. *)

val access : t -> int -> bool
(** [true] on hit; misses insert and evict the set's LRU way. *)

val hits : t -> int
(** Accesses that found their block resident. *)

val misses : t -> int
(** Accesses that inserted (evicting when the set was full). *)

val accesses : t -> int
(** Total accesses, [hits + misses]. *)

val miss_rate : t -> float
(** [misses / accesses]; 0 before any access. *)

val reset : t -> unit
(** Empty every set and zero the counters. *)

val run : sets:int -> ways:int -> Trace.t -> int
(** Misses of a trace on a fresh cache. *)
