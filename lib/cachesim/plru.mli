(** Tree-based pseudo-LRU set-associative cache.

    Real last-level caches rarely implement true LRU: most use the
    tree-PLRU approximation (one bit per internal node of a binary tree
    over the ways).  This simulator quantifies how far the model's LRU
    idealisation sits from deployed replacement policies: tests check that
    PLRU equals LRU for 1- and 2-way sets (where the tree is exact) and
    tracks it closely for wider sets. *)

type t

val create : sets:int -> ways:int -> t
(** [ways] must be a power of two (the PLRU tree is complete).
    @raise Invalid_argument otherwise or on nonpositive arguments. *)

val capacity : t -> int
(** [sets * ways], in blocks. *)

val access : t -> int -> bool
(** [true] on hit.  On a hit or fill, the tree bits along the way's path
    are flipped to point away from it; on a miss the bits are followed to
    the victim. *)

val hits : t -> int
(** Accesses that found their block resident. *)

val misses : t -> int
(** Accesses that filled or evicted. *)

val accesses : t -> int
(** Total accesses, [hits + misses]. *)

val miss_rate : t -> float
(** [misses / accesses]; 0 before any access. *)

val reset : t -> unit
(** Empty every set and zero the counters. *)

val run : sets:int -> ways:int -> Trace.t -> int
(** Misses of a trace on a fresh cache. *)
