(* Command-line interface.

   Subcommands:
     experiment  — regenerate a paper table/figure (or all of them)
     schedule    — run one policy on a generated instance and print it
     exact       — certify an instance with the branch-and-bound solver
     cachesim    — calibrate a synthetic NPB-like kernel's power law
     validate    — replay a schedule in the discrete-event simulator
     online      — serve a Poisson application stream event-by-event
     instance    — print a generated instance's application parameters
     serve       — run the co-scheduling daemon on a Unix socket
     client      — talk to a running daemon
     journal     — inspect/validate a daemon journal or snapshot file *)

open Cmdliner

(* Converters that reject out-of-range values at parse time, naming the
   offending flag — a bad --trials or --jobs must die with a usage error,
   not a backtrace three layers down. *)
let pos_int ~flag =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 1 -> Ok v
    | Some v -> Error (`Msg (Printf.sprintf "--%s must be >= 1, got %d" flag v))
    | None -> Error (`Msg (Printf.sprintf "--%s expects an integer, got %s" flag s))
  in
  Arg.conv (parse, Format.pp_print_int)

let nonneg_int ~flag =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> Ok v
    | Some v -> Error (`Msg (Printf.sprintf "--%s must be >= 0, got %d" flag v))
    | None -> Error (`Msg (Printf.sprintf "--%s expects an integer, got %s" flag s))
  in
  Arg.conv (parse, Format.pp_print_int)

let pos_float ~flag =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0. && Float.is_finite v -> Ok v
    | Some v -> Error (`Msg (Printf.sprintf "--%s must be positive, got %g" flag v))
    | None -> Error (`Msg (Printf.sprintf "--%s expects a number, got %s" flag s))
  in
  Arg.conv (parse, Format.pp_print_float)

let nonneg_float ~flag =
  let parse s =
    match float_of_string_opt s with
    | Some v when v >= 0. && Float.is_finite v -> Ok v
    | Some v ->
      Error (`Msg (Printf.sprintf "--%s must be >= 0 and finite, got %g" flag v))
    | None -> Error (`Msg (Printf.sprintf "--%s expects a number, got %s" flag s))
  in
  Arg.conv (parse, Format.pp_print_float)

let port_conv ~flag =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 1 && v <= 65535 -> Ok v
    | Some v ->
      Error (`Msg (Printf.sprintf "--%s must be a port in 1..65535, got %d" flag v))
    | None -> Error (`Msg (Printf.sprintf "--%s expects a port number, got %s" flag s))
  in
  Arg.conv (parse, Format.pp_print_int)

(* --- observability ----------------------------------------------------- *)

(* Every subcommand accepts --trace and --metrics; both route through
   Obs.Report so semantics match bench/main exactly: requesting either
   enables probes for the run, and the outputs are produced at exit. *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record tracing spans and write them to FILE as Chrome \
           trace-event JSON (open in chrome://tracing or Perfetto).")

let metrics_arg =
  let parse s =
    try Ok (Obs.Report.format_of_string s)
    with Invalid_argument m -> Error (`Msg m)
  in
  let print ppf f = Format.pp_print_string ppf (Obs.Report.format_name f) in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Print an end-of-run metrics report: $(b,text) (aligned table), \
           $(b,prom) (Prometheus text exposition) or $(b,json).")

(* Run a subcommand body under the requested observability outputs.  The
   trace is validated and written (and the metrics report printed) even
   when the body raises, so a failed run still leaves its evidence. *)
let with_obs trace metrics f =
  ignore (Obs.Report.configure ?trace ?metrics () : bool);
  Fun.protect ~finally:(fun () -> Obs.Report.finish ?trace ?metrics ()) f

let seed_arg =
  Arg.(value & opt int 2017 & info [ "seed" ] ~docv:"SEED" ~doc:"Master RNG seed.")

let trials_arg =
  Arg.(
    value
    & opt (pos_int ~flag:"trials") 50
    & info [ "trials" ] ~docv:"N" ~doc:"Repetitions per sweep point (paper: 50).")

let jobs_arg =
  Arg.(
    value
    & opt (nonneg_int ~flag:"jobs") 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for trial execution: 1 runs sequentially (the \
           default, byte-identical to historical output), 0 uses one \
           domain per core.  Results are bit-identical for every value.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Append-only JSONL checkpoint of completed trials.  Re-running \
           an interrupted campaign with the same file skips every trial \
           already journalled.")

let on_failure_arg =
  Arg.(
    value
    & opt (enum [ ("abort", `Abort); ("skip", `Skip); ("retry", `Retry) ]) `Abort
    & info [ "on-failure" ] ~docv:"POLICY"
        ~doc:
          "What to do when a trial raises: $(b,abort) fails the whole \
           campaign (default), $(b,skip) records the trial as a hole and \
           keeps going, $(b,retry) re-runs it up to $(b,--max-retries) \
           times with deterministic backoff before skipping.")

let max_retries_arg =
  Arg.(
    value
    & opt (nonneg_int ~flag:"max-retries") 2
    & info [ "max-retries" ] ~docv:"N"
        ~doc:"Retry budget per trial under $(b,--on-failure retry).")

let trial_timeout_arg =
  Arg.(
    value
    & opt (some (pos_float ~flag:"trial-timeout")) None
    & info [ "trial-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Cooperative per-trial deadline: a trial still running after \
           this many seconds fails with a timeout at its next safepoint \
           and is handled by the $(b,--on-failure) policy.")

let dataset_arg =
  let parse s =
    try Ok (Model.Workload.dataset_of_string s)
    with Invalid_argument m -> Error (`Msg m)
  in
  let print ppf d = Format.pp_print_string ppf (Model.Workload.dataset_name d) in
  Arg.(
    value
    & opt (conv (parse, print)) Model.Workload.NpbSynth
    & info [ "dataset" ] ~docv:"DS" ~doc:"Data set: npb6, npb-synth or random.")

let napps_arg =
  Arg.(
    value
    & opt (pos_int ~flag:"apps") 16
    & info [ "n"; "apps" ] ~docv:"N" ~doc:"Number of applications.")

let procs_arg =
  Arg.(
    value
    & opt (pos_float ~flag:"procs") 256.
    & info [ "p"; "procs" ] ~docv:"P" ~doc:"Processor count.")

let cs_arg =
  Arg.(
    value
    & opt (pos_float ~flag:"cache-size") 32e9
    & info [ "cs"; "cache-size" ] ~docv:"BYTES" ~doc:"Shared LLC size in bytes.")

let policy_arg =
  let parse s =
    try Ok (Sched.Heuristics.of_string s) with Invalid_argument m -> Error (`Msg m)
  in
  let print ppf p = Format.pp_print_string ppf (Sched.Heuristics.name p) in
  Arg.(
    value
    & opt (conv (parse, print)) Sched.Heuristics.dominant_min_ratio
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Co-scheduling policy: DominantMinRatio, DominantRevMaxRatio, ... \
           AllProcCache, Fair, 0cache, RandomPart.")

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "file" ] ~docv:"CSV"
        ~doc:
          "Load the applications from a CSV instance file (see \
           Model.Instance_io) instead of generating them.")

let platform_of ~procs ~cs = Model.Platform.make ~p:procs ~cs ()

let make_instance ?file ~seed ~dataset ~napps ~procs ~cs () =
  let rng = Util.Rng.create seed in
  let platform = platform_of ~procs ~cs in
  let apps =
    match file with
    | Some path -> Model.Instance_io.load path
    | None -> Model.Workload.generate ~rng dataset napps
  in
  (rng, platform, apps)

(* --- experiment ------------------------------------------------------- *)

let experiment_cmd =
  let id_arg =
    Arg.(
      value
      & pos 0 string "all"
      & info [] ~docv:"ID"
          ~doc:"Experiment id (fig1..fig18, table2, optgap, alpha, \
                validation, rounding, integer, speedup, ucp, profiles, \
                tracedriven) or 'all'.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of aligned text.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Also write <id>.dat and <id>.gp gnuplot files into DIR.")
  in
  let write_file path contents =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents)
  in
  let run id trials seed jobs journal on_failure max_retries trial_timeout csv
      out trace metrics =
    with_obs trace metrics @@ fun () ->
    let config =
      {
        Experiments.Runner.trials;
        seed;
        jobs;
        journal;
        cache = None;
        on_failure;
        max_retries;
        trial_timeout;
        fault = None;
      }
    in
    let ids =
      if String.lowercase_ascii id = "all" then Experiments.Figures.all_ids
      else [ id ]
    in
    List.iter
      (fun id ->
        List.iter
          (fun fig ->
            if csv then print_string (Experiments.Report.to_csv fig)
            else print_string (Experiments.Report.render fig ^ "\n");
            match out with
            | None -> ()
            | Some dir ->
              if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
              let fig_id = fig.Experiments.Report.id in
              let dat = Filename.concat dir (fig_id ^ ".dat") in
              write_file dat (Experiments.Report.to_dat fig);
              write_file
                (Filename.concat dir (fig_id ^ ".gp"))
                (Experiments.Report.to_gnuplot ~datfile:(fig_id ^ ".dat") fig))
          (Experiments.Figures.run ~config id))
      ids
  in
  let term =
    Term.(
      const run $ id_arg $ trials_arg $ seed_arg $ jobs_arg $ journal_arg
      $ on_failure_arg $ max_retries_arg $ trial_timeout_arg $ csv_arg
      $ out_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table/figure of the paper.")
    term

(* --- schedule --------------------------------------------------------- *)

let schedule_cmd =
  let run seed dataset napps procs cs policy file trace metrics =
    with_obs trace metrics @@ fun () ->
    let rng, platform, apps =
      make_instance ?file ~seed ~dataset ~napps ~procs ~cs ()
    in
    let result = Sched.Heuristics.run ~rng ~platform ~apps policy in
    (match result.Sched.Heuristics.schedule with
    | Some schedule -> Format.printf "%a@." Model.Schedule.pp schedule
    | None ->
      Format.printf
        "%s runs applications sequentially (no concurrent allocation).@."
        (Sched.Heuristics.name policy));
    Format.printf "policy   = %s@.makespan = %.6g@."
      (Sched.Heuristics.name policy)
      result.Sched.Heuristics.makespan;
    match result.Sched.Heuristics.cached with
    | Some subset ->
      Format.printf "cached   = {%s}@."
        (String.concat ", "
           (List.map
              (fun i -> apps.(i).Model.App.name)
              (Theory.Dominant.indices subset)))
    | None -> ()
  in
  let term =
    Term.(
      const run $ seed_arg $ dataset_arg $ napps_arg $ procs_arg $ cs_arg
      $ policy_arg $ file_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Run one co-scheduling policy on a generated instance.")
    term

(* --- exact ------------------------------------------------------------- *)

let exact_cmd =
  let order_arg =
    let parse s =
      try Ok (Theory.Bnb.order_of_string s)
      with Invalid_argument m -> Error (`Msg m)
    in
    let print ppf o = Format.pp_print_string ppf (Theory.Bnb.order_name o) in
    Arg.(
      value
      & opt (conv (parse, print)) Theory.Bnb.Best
      & info [ "order" ] ~docv:"ORDER"
          ~doc:"Node order: $(b,best) (best-first on the lower bound, the \
                default) or $(b,dfs) (bounded-stack depth-first).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"budget") Theory.Bnb.default_budget.Theory.Bnb.max_nodes
      & info [ "budget" ] ~docv:"NODES"
          ~doc:"Node budget: the search stops with a $(b,budget-exhausted) \
                verdict after expanding this many nodes.")
  in
  let seconds_arg =
    Arg.(
      value
      & opt (pos_float ~flag:"seconds") Theory.Bnb.default_budget.Theory.Bnb.max_seconds
      & info [ "seconds" ] ~docv:"S" ~doc:"Wall-clock budget in seconds.")
  in
  let max_n_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"max-n") 62
      & info [ "max-n" ] ~docv:"N"
          ~doc:"Refuse instances larger than N applications (the subset \
                masks cap the solver at 62).")
  in
  let exact_jobs_arg =
    Arg.(
      value
      & opt (nonneg_int ~flag:"jobs") 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for parallel subtree exploration: 1 searches \
             sequentially (the default), 0 uses one domain per core.  The \
             certified optimum is identical for every value.")
  in
  let run seed dataset napps procs cs file order budget seconds max_n jobs
      trace metrics =
    with_obs trace metrics @@ fun () ->
    let rng, platform, apps =
      make_instance ?file ~seed ~dataset ~napps ~procs ~cs ()
    in
    (* The certificate is for the Lemma 3 objective, which assumes
       perfectly parallel applications; force s = 0 so the heuristic
       makespans are measured against the same objective. *)
    let apps = Array.map (fun a -> Model.App.with_s a 0.) apps in
    let budget = { Theory.Bnb.max_nodes = budget; max_seconds = seconds } in
    let solve pool =
      Sched.Certify.gaps ~order ~budget ?pool ~max_n ~rng ~platform ~apps ()
    in
    let result, gaps =
      if jobs = 1 then solve None
      else
        Exec.Pool.with_pool ~jobs (fun pool ->
            solve (if Exec.Pool.size pool = 0 then None else Some pool))
    in
    let table = Util.Table.create [ "policy"; "makespan"; "ratio to optimum" ] in
    List.iter
      (fun (g : Sched.Certify.gap) ->
        Util.Table.add_row table
          [
            Sched.Heuristics.name g.Sched.Certify.policy;
            Printf.sprintf "%.6g" g.Sched.Certify.makespan;
            Printf.sprintf "%.6f" g.Sched.Certify.ratio;
          ])
      gaps;
    Util.Table.print table;
    let stats = result.Theory.Bnb.stats in
    Printf.printf "verdict     = %s\n"
      (Theory.Bnb.verdict_name result.Theory.Bnb.verdict);
    Printf.printf "%s = %.6g\n"
      (match result.Theory.Bnb.verdict with
      | Theory.Bnb.Certified -> "optimum    "
      | Theory.Bnb.Budget_exhausted -> "incumbent  ")
      result.Theory.Bnb.makespan;
    Printf.printf "lower bound = %.6g (gap %.3g)\n"
      result.Theory.Bnb.lower_bound
      (result.Theory.Bnb.makespan /. result.Theory.Bnb.lower_bound -. 1.);
    Printf.printf "cached      = {%s}\n"
      (String.concat ", "
         (List.map
            (fun i -> apps.(i).Model.App.name)
            (Theory.Dominant.indices result.Theory.Bnb.subset)));
    Printf.printf "nodes=%d pruned=%d leaves=%d incumbent updates=%d\n"
      stats.Theory.Bnb.nodes stats.Theory.Bnb.pruned stats.Theory.Bnb.leaves
      stats.Theory.Bnb.incumbent_updates
  in
  let term =
    Term.(
      const run $ seed_arg $ dataset_arg $ napps_arg $ procs_arg $ cs_arg
      $ file_arg $ order_arg $ budget_arg $ seconds_arg $ max_n_arg
      $ exact_jobs_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:
         "Certify an instance: branch-and-bound exact solver with the \
          heuristics as incumbent seeds, reporting each policy's \
          optimality gap and a certified-vs-budget-exhausted verdict.")
    term

(* --- cachesim ---------------------------------------------------------- *)

let cachesim_cmd =
  let kernel_arg =
    Arg.(
      value
      & opt string "CG"
      & info [ "kernel" ] ~docv:"NAME" ~doc:"Kernel: CG, BT, LU, SP, MG or FT.")
  in
  let scale_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"scale") 2048
      & info [ "scale" ] ~docv:"BLOCKS" ~doc:"Footprint scale.")
  in
  let length_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"length") 200_000
      & info [ "length" ] ~docv:"N" ~doc:"Trace length.")
  in
  let run seed kernel scale length trace metrics =
    with_obs trace metrics @@ fun () ->
    let rng = Util.Rng.create seed in
    let cal = Cachesim.Kernels.calibrate_kernel ~rng ~scale ~length kernel in
    let table = Util.Table.create [ "capacity(blocks)"; "miss rate" ] in
    Array.iter
      (fun (c, m) ->
        Util.Table.add_row table [ string_of_int c; Printf.sprintf "%.5f" m ])
      cal.Cachesim.Miss_curve.curve.Cachesim.Miss_curve.points;
    Util.Table.print table;
    let fit = cal.Cachesim.Miss_curve.fit in
    Printf.printf
      "power-law fit: m0 = %.4g at %d blocks, alpha = %.3f, R^2 = %.3f\n"
      fit.Util.Regress.m0 cal.Cachesim.Miss_curve.c0_blocks
      fit.Util.Regress.alpha fit.Util.Regress.r2
  in
  let term =
    Term.(
      const run $ seed_arg $ kernel_arg $ scale_arg $ length_arg $ trace_arg
      $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "cachesim"
       ~doc:"Calibrate a synthetic kernel's miss-rate power law.")
    term

(* --- validate ---------------------------------------------------------- *)

let validate_cmd =
  let redistribute_arg =
    Arg.(
      value & flag
      & info [ "redistribute" ]
          ~doc:"Work-conserving mode: survivors inherit freed processors and \
                cache.")
  in
  let run seed dataset napps procs cs policy redistribute file trace metrics =
    with_obs trace metrics @@ fun () ->
    let rng, platform, apps =
      make_instance ?file ~seed ~dataset ~napps ~procs ~cs ()
    in
    let result = Sched.Heuristics.run ~rng ~platform ~apps policy in
    match result.Sched.Heuristics.schedule with
    | None -> prerr_endline "policy has no concurrent schedule to replay"
    | Some schedule ->
      let options =
        {
          Simulator.Coschedule_sim.default_options with
          redistribute_procs = redistribute;
          redistribute_cache = redistribute;
        }
      in
      let outcome = Simulator.Coschedule_sim.run ~options schedule in
      Printf.printf "analytic makespan  = %.6g\n"
        (Model.Schedule.makespan schedule);
      Printf.printf "simulated makespan = %.6g\n"
        outcome.Simulator.Coschedule_sim.makespan;
      Printf.printf "max model error    = %.3g\n"
        (Simulator.Coschedule_sim.model_error schedule)
  in
  let term =
    Term.(
      const run $ seed_arg $ dataset_arg $ napps_arg $ procs_arg $ cs_arg
      $ policy_arg $ redistribute_arg $ file_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Replay a policy's schedule in the discrete-event simulator.")
    term

(* --- online ------------------------------------------------------------ *)

(* Named-spec converters for the heavy-tailed workload flags, shared by
   `online` (stream generation) and `client storm` (wire submission). *)
let scenario_conv =
  let parse s =
    try Ok (Stats.Scenario.of_string s) with Invalid_argument m -> Error (`Msg m)
  in
  let print ppf sc = Format.pp_print_string ppf (Stats.Scenario.to_string sc) in
  Arg.conv (parse, print)

let dist_conv =
  let parse s =
    try Ok (Stats.Dist.of_string s) with Invalid_argument m -> Error (`Msg m)
  in
  let print ppf d = Format.pp_print_string ppf (Stats.Dist.to_string d) in
  Arg.conv (parse, print)

let online_cmd =
  let online_policy_arg =
    let parse s =
      try Ok (Online.Policy.of_string s) with Invalid_argument m -> Error (`Msg m)
    in
    let print ppf p = Format.pp_print_string ppf (Online.Policy.name p) in
    Arg.(
      value
      & opt (some (conv (parse, print))) None
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Re-solve policy: $(b,every-event), $(b,batched:K) or \
             $(b,threshold:EPS).  Omit to run all three defaults.")
  in
  let load_arg =
    Arg.(
      value
      & opt (pos_float ~flag:"load") 4.
      & info [ "load" ] ~docv:"L"
          ~doc:
            "Target offered load: the arrival rate keeps about L jobs in \
             flight if each ran alone on the full platform.")
  in
  let cold_arg =
    Arg.(
      value & flag
      & info [ "cold" ]
          ~doc:
            "Re-solve from scratch at every decision (the baseline the \
             warm-started incremental solver is measured against).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Assert processor and cache conservation after every event.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit metrics as one JSON object per policy.")
  in
  let online_jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for sharded re-solve passes (0 = all cores).  \
             Allocations are bit-identical to the sequential path whatever \
             N; the shards only buy wall-clock on large live sets.")
  in
  let arrivals_arg =
    Arg.(
      value
      & opt (some scenario_conv) None
      & info [ "arrivals" ] ~docv:"SPEC"
          ~doc:
            "Arrival process instead of $(b,--load): a renewal distribution \
             ($(b,poisson:rate=4), $(b,pareto:a=1.5,xm=0.2), \
             $(b,lognormal:mu=0,sigma=1), $(b,weibull:k=0.7,scale=1), \
             $(b,hyperexp:p=0.9,mean1=0.5,mean2=8)), a flash crowd \
             ($(b,flash:base=2,burst=20,every=50,a=1.5,xm=2)) or a diurnal \
             cycle ($(b,diurnal:rate=4,amp=0.8,period=200)).  Rates are in \
             jobs per mean alone-time, so $(b,poisson:rate=4) matches \
             $(b,--load 4).")
  in
  let sizes_arg =
    Arg.(
      value
      & opt (some dist_conv) None
      & info [ "sizes" ] ~docv:"SPEC"
          ~doc:
            "Heavy-tailed job sizes: override each generated application's \
             work with a draw from SPEC, in operations (the NPB-SYNTH range \
             is 1e8..1e12, so e.g. $(b,pareto:a=1.1,xm=1e9)).")
  in
  let run seed dataset napps procs cs load arrivals sizes policy cold check
      json jobs trace metrics =
    with_obs trace metrics @@ fun () ->
    let rng = Util.Rng.create seed in
    let platform = platform_of ~procs ~cs in
    let jobs = if jobs = 0 then Exec.Pool.default_jobs () else jobs in
    let stream =
      match (arrivals, sizes) with
      | None, None ->
        Online.Workload_stream.poisson_load ~rng ~platform ~load ~dataset napps
      | scenario, _ ->
        (* --sizes without --arrivals keeps the Poisson process at the
           requested load; only the job-size marginal changes. *)
        let scenario =
          Option.value scenario
            ~default:
              (Stats.Scenario.Renewal (Stats.Dist.Exponential { rate = load }))
        in
        Online.Workload_stream.scenario_load ~rng ~platform ?sizes ~scenario
          ~dataset napps
    in
    let policies =
      match policy with Some p -> [ p ] | None -> Online.Policy.defaults
    in
    let mode = if cold then Online.Incremental.Cold else Online.Incremental.Warm in
    Exec.Pool.with_pool ~jobs @@ fun pool ->
    let pool = if Exec.Pool.size pool = 0 then None else Some pool in
    List.iter
      (fun policy ->
        let config =
          { Online.Service.default_config with policy; mode; validate = check }
        in
        let report = Online.Service.run ~config ?pool ~platform stream in
        let metrics = report.Online.Service.metrics in
        if json then
          Printf.printf "{\"policy\":\"%s\",\"mode\":\"%s\",\"metrics\":%s}\n"
            (Online.Policy.name policy)
            (if cold then "cold" else "warm")
            (Online.Metrics.to_json metrics)
        else
          print_string
            (Online.Metrics.render ~label:(Online.Policy.name policy) metrics
            ^ "\n"))
      policies
  in
  let term =
    Term.(
      const run $ seed_arg $ dataset_arg $ napps_arg $ procs_arg $ cs_arg
      $ load_arg $ arrivals_arg $ sizes_arg $ online_policy_arg $ cold_arg
      $ check_arg $ json_arg $ online_jobs_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "online"
       ~doc:
         "Serve a stream of applications with the event-driven online \
          co-scheduler: Poisson by default, or heavy-tailed / flash-crowd / \
          diurnal arrivals via $(b,--arrivals) and $(b,--sizes).")
    term

(* --- instance ---------------------------------------------------------- *)

let instance_cmd =
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"CSV" ~doc:"Also write the instance to a CSV file.")
  in
  let run seed dataset napps procs cs save trace metrics =
    with_obs trace metrics @@ fun () ->
    let _, platform, apps = make_instance ~seed ~dataset ~napps ~procs ~cs () in
    (match save with
    | Some path -> Model.Instance_io.save path apps
    | None -> ());
    Format.printf "%a@." Model.Platform.pp platform;
    let table = Util.Table.create [ "name"; "w"; "s"; "f"; "m0@40MB"; "d_i" ] in
    Array.iter
      (fun (app : Model.App.t) ->
        Util.Table.add_row table
          [
            app.name;
            Printf.sprintf "%.4g" app.w;
            Printf.sprintf "%.4g" app.s;
            Printf.sprintf "%.4g" app.f;
            Printf.sprintf "%.4g" app.m0;
            Printf.sprintf "%.4g" (Model.Power_law.d_of ~app ~platform);
          ])
      apps;
    Util.Table.print table
  in
  let term =
    Term.(
      const run $ seed_arg $ dataset_arg $ napps_arg $ procs_arg $ cs_arg
      $ save_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "instance" ~doc:"Print a generated instance's parameters.")
    term

(* --- refine ------------------------------------------------------------ *)

let refine_cmd =
  let max_iter_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"max-iter") 200
      & info [ "max-iter" ] ~docv:"N" ~doc:"Fixed-point iteration cap.")
  in
  let tol_arg =
    Arg.(
      value
      & opt (pos_float ~flag:"tol") 1e-10
      & info [ "tol" ] ~docv:"EPS"
          ~doc:"Relative makespan-change convergence tolerance.")
  in
  let reference_arg =
    Arg.(
      value & flag
      & info [ "reference" ]
          ~doc:"Also run the kept pre-overhaul implementation and report \
                both (sanity check: the two agree to the fixed point's \
                tolerance).")
  in
  let run seed dataset napps procs cs file max_iter tol reference trace metrics
      =
    with_obs trace metrics @@ fun () ->
    let _rng, platform, apps =
      make_instance ?file ~seed ~dataset ~napps ~procs ~cs ()
    in
    let subset = Online.Incremental.cold_partition ~platform apps in
    let x0 = Theory.Dominant.cache_allocation_capped ~platform ~apps subset in
    let k0 = Sched.Equalize.solve_makespan ~platform ~apps x0 in
    let iters = ref 0 in
    let r = Sched.Refine.refine ~max_iter ~tol ~iters ~platform ~apps ~x0 () in
    Format.printf
      "base (Theorem 3 capped) makespan = %.6g@.refined makespan           \
       \ = %.6g@.improvement                 = %.4g%%@.fixed-point \
       iterations      = %d@.objective evaluations       = %d@."
      k0 r.Sched.Refine.makespan
      (100. *. r.Sched.Refine.improvement)
      r.Sched.Refine.iterations !iters;
    let table = Util.Table.create [ "name"; "x0"; "x_refined" ] in
    Array.iteri
      (fun i (app : Model.App.t) ->
        Util.Table.add_row table
          [
            app.name;
            Printf.sprintf "%.4g" x0.(i);
            Printf.sprintf "%.4g" r.Sched.Refine.x.(i);
          ])
      apps;
    Util.Table.print table;
    if reference then begin
      let rr = Sched.Refine.refine_reference ~max_iter ~tol ~platform ~apps ~x0 () in
      Format.printf
        "reference makespan          = %.6g (%d iterations; rel gap %.2g)@."
        rr.Sched.Refine.makespan rr.Sched.Refine.iterations
        (Float.abs (rr.Sched.Refine.makespan -. r.Sched.Refine.makespan)
        /. rr.Sched.Refine.makespan)
    end
  in
  let term =
    Term.(
      const run $ seed_arg $ dataset_arg $ napps_arg $ procs_arg $ cs_arg
      $ file_arg $ max_iter_arg $ tol_arg $ reference_arg $ trace_arg
      $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:
         "Refine the Theorem 3 cache allocation with the speedup-aware \
          gradient fixed point.")
    term

(* --- serve / client ----------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt string "cosched.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path of the daemon.")

let port_arg =
  Arg.(
    value
    & opt (some (port_conv ~flag:"port")) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Loopback TCP port (in addition to, or instead of, the socket).")

let serve_cmd =
  let max_clients_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"max-clients") 64
      & info [ "max-clients" ] ~docv:"N"
          ~doc:
            "Connection admission limit: further connects receive one \
             $(b,overload) error frame and are closed.")
  in
  let queue_depth_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"queue-depth") 1024
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Backpressure bound: submissions beyond N live jobs are \
             refused with an $(b,overload) error.")
  in
  let drain_timeout_arg =
    Arg.(
      value
      & opt (some (pos_float ~flag:"drain-timeout")) None
      & info [ "drain-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Cooperative deadline for drains (client $(b,drain) verb or \
             SIGTERM); unbounded when omitted.")
  in
  let client_timeout_arg =
    Arg.(
      value
      & opt (pos_float ~flag:"client-timeout") 10.
      & info [ "client-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Drop a client whose connection stays write-blocked this long \
             (a slow subscriber must not stall the scheduler).")
  in
  let serve_policy_arg =
    let parse s =
      try Ok (Online.Policy.of_string s) with Invalid_argument m -> Error (`Msg m)
    in
    let print ppf p = Format.pp_print_string ppf (Online.Policy.name p) in
    Arg.(
      value
      & opt (conv (parse, print)) Online.Policy.Every_event
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Re-solve policy: $(b,every-event), $(b,batched:K) or \
             $(b,threshold:EPS).")
  in
  let cold_arg =
    Arg.(
      value & flag
      & info [ "cold" ] ~doc:"Re-solve from scratch at every decision.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Assert processor and cache conservation after every event.")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Checkpoint the full live state to FILE and compact the journal \
             (requires $(b,--journal)).  Recovery prefers the newest valid \
             snapshot and replays only the journal tail past it.")
  in
  let snapshot_every_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"snapshot-every") 256
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Journaled mutations between automatic snapshots (ignored \
             without $(b,--snapshot)).")
  in
  let snapshot_keep_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"snapshot-keep") Serve.Backend.default_config.snapshot_keep
      & info [ "snapshot-keep" ] ~docv:"N"
          ~doc:
            "Snapshot generations to keep on disk (FILE, FILE.1, ...).  \
             Recovery falls back generation by generation before resorting \
             to full journal replay; the journal retains every mutation \
             since the oldest kept checkpoint.")
  in
  let deadline_ms_arg =
    Arg.(
      value
      & opt (some (pos_float ~flag:"deadline-ms")) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Cooperative wall-clock deadline per request (milliseconds, \
             beside the virtual model clock); exceeding it yields a \
             $(b,timeout) error reply.")
  in
  let idle_timeout_arg =
    Arg.(
      value
      & opt (some (pos_float ~flag:"idle-timeout")) None
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Reap clients with no inbound activity for this long; quiet \
             clients stay alive with $(b,ping) heartbeats.")
  in
  let max_buffer_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"max-buffer") Serve.Session.default_max_out
      & info [ "max-buffer" ] ~docv:"BYTES"
          ~doc:
            "Per-client outbound buffer bound: slow subscribers lose push \
             frames past it, and a client whose response cannot be buffered \
             is evicted with an $(b,overload) notice.")
  in
  let shed_highwater_arg =
    Arg.(
      value
      & opt (nonneg_int ~flag:"shed-highwater") 0
      & info [ "shed-highwater" ] ~docv:"N"
          ~doc:
            "Enter load-shed mode at N live jobs: submits are rejected with \
             a structured $(b,overload) error carrying a retry-after hint \
             while queries, cancels and drains keep being served.  0 \
             disables shedding.")
  in
  let shed_lowwater_arg =
    Arg.(
      value
      & opt (nonneg_int ~flag:"shed-lowwater") 0
      & info [ "shed-lowwater" ] ~docv:"N"
          ~doc:
            "Leave load-shed mode once live jobs fall to N (defaults to \
             half the high-water mark; hysteresis against flapping).")
  in
  let run socket port max_clients queue_depth drain_timeout client_timeout
      journal snapshot snapshot_every snapshot_keep deadline_ms idle_timeout
      max_buffer shed_highwater shed_lowwater policy cold check procs cs trace
      metrics =
    with_obs trace metrics @@ fun () ->
    let mode =
      if cold then Online.Incremental.Cold else Online.Incremental.Warm
    in
    if snapshot <> None && journal = None then begin
      prerr_endline "cosched serve: --snapshot requires --journal";
      exit 2
    end;
    let shed_lowwater =
      if shed_highwater > 0 && shed_lowwater = 0 then max 1 (shed_highwater / 2)
      else shed_lowwater
    in
    if shed_highwater > 0 && shed_lowwater > shed_highwater then begin
      prerr_endline "cosched serve: --shed-lowwater must be <= --shed-highwater";
      exit 2
    end;
    let config =
      {
        Serve.Daemon.backend =
          {
            Serve.Backend.service =
              { Online.Service.default_config with policy; mode; validate = check };
            platform = platform_of ~procs ~cs;
            queue_depth;
            journal;
            snapshot;
            snapshot_every;
            snapshot_keep;
            shed_highwater;
            shed_lowwater;
            shed_retry_after = Serve.Backend.default_config.shed_retry_after;
          };
        socket;
        port;
        max_clients;
        drain_timeout;
        client_timeout;
        request_deadline = Option.map (fun ms -> ms /. 1000.) deadline_ms;
        idle_timeout;
        max_buffer;
      }
    in
    Serve.Daemon.run
      ~on_ready:(fun () ->
        Printf.printf "cosched serve: listening on %s%s\n%!" socket
          (match port with
          | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
          | None -> ""))
      config;
    print_endline "cosched serve: drained, exiting"
  in
  let term =
    Term.(
      const run $ socket_arg $ port_arg $ max_clients_arg $ queue_depth_arg
      $ drain_timeout_arg $ client_timeout_arg $ journal_arg $ snapshot_arg
      $ snapshot_every_arg $ snapshot_keep_arg $ deadline_ms_arg $ idle_timeout_arg
      $ max_buffer_arg $ shed_highwater_arg $ shed_lowwater_arg
      $ serve_policy_arg $ cold_arg $ check_arg $ procs_arg $ cs_arg
      $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the co-scheduling daemon: submit/cancel/query/subscribe/drain \
          over a Unix-domain socket (journal-backed, crash-recoverable).")
    term

let client_cmd =
  let action_arg =
    Arg.(
      value
      & pos 0
          (enum
             [
               ("ping", `Ping); ("status", `Status); ("stats", `Stats);
               ("allocs", `Allocs); ("job", `Job); ("submit", `Submit);
               ("cancel", `Cancel); ("drain", `Drain); ("watch", `Watch);
               ("storm", `Storm);
             ])
          `Status
      & info [] ~docv:"ACTION"
          ~doc:
            "One of $(b,ping), $(b,status), $(b,stats), $(b,allocs), \
             $(b,job) ID, $(b,submit), $(b,cancel) ID, $(b,drain), \
             $(b,watch) (subscribe and print push events until the daemon \
             drains) or $(b,storm) (submit a scenario-timed stream, see \
             $(b,--arrivals)).")
  in
  let id_arg =
    Arg.(
      value
      & pos 1 (some int) None
      & info [] ~docv:"ID" ~doc:"Job id (for $(b,job) and $(b,cancel)).")
  in
  let at_arg =
    Arg.(
      value
      & opt (some (nonneg_float ~flag:"at")) None
      & info [ "at" ] ~docv:"TIME"
          ~doc:
            "Model time of the request.  The daemon's clock is virtual: it \
             advances only through these timestamps and drains.")
  in
  let name_arg =
    Arg.(
      value & opt string "app"
      & info [ "name" ] ~docv:"NAME" ~doc:"Submitted application name.")
  in
  let w_arg =
    Arg.(
      value
      & opt (pos_float ~flag:"w") 1e12
      & info [ "w" ] ~docv:"OPS" ~doc:"Work (computing operations).")
  in
  let s_arg =
    Arg.(
      value
      & opt (nonneg_float ~flag:"s") 0.01
      & info [ "s" ] ~docv:"FRAC" ~doc:"Sequential fraction in [0, 1).")
  in
  let f_arg =
    Arg.(
      value
      & opt (nonneg_float ~flag:"f") 0.1
      & info [ "f" ] ~docv:"FREQ" ~doc:"Data accesses per operation.")
  in
  let m0_arg =
    Arg.(
      value
      & opt (nonneg_float ~flag:"m0") 0.01
      & info [ "m0" ] ~docv:"RATE" ~doc:"Miss rate at the baseline cache.")
  in
  let c0_arg =
    Arg.(
      value
      & opt (pos_float ~flag:"c0") 40e6
      & info [ "c0" ] ~docv:"BYTES" ~doc:"Baseline cache size for --m0.")
  in
  let footprint_arg =
    Arg.(
      value
      & opt (some (pos_float ~flag:"footprint")) None
      & info [ "footprint" ] ~docv:"BYTES"
          ~doc:"Memory footprint; omitted means larger than any cache.")
  in
  let sid_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sid" ] ~docv:"ID"
          ~doc:
            "Session id stamped into requests: resending a mutation under \
             the same session id and request id is deduplicated by the \
             daemon (exactly-once retries).")
  in
  let storm_arrivals_arg =
    Arg.(
      value
      & opt scenario_conv (Stats.Scenario.Renewal (Stats.Dist.Exponential { rate = 1. }))
      & info [ "arrivals" ] ~docv:"SPEC"
          ~doc:
            "Arrival process for $(b,storm), in raw model-time units: e.g. \
             $(b,poisson:rate=1), $(b,pareto:a=1.5,xm=0.2) or \
             $(b,flash:base=2,burst=20,every=50,a=1.5,xm=2) (a flash crowd \
             is how to drive a shedding daemon into and out of overload).")
  in
  let storm_sizes_arg =
    Arg.(
      value
      & opt (some dist_conv) None
      & info [ "sizes" ] ~docv:"SPEC"
          ~doc:
            "Draw each storm job's work from SPEC (operations, e.g. \
             $(b,pareto:a=1.1,xm=1e9)) instead of the fixed $(b,--w).")
  in
  let count_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"count") 50
      & info [ "count" ] ~docv:"N" ~doc:"Jobs submitted by $(b,storm).")
  in
  let run socket port sid action id at name w s f m0 c0 footprint seed
      arrivals sizes count trace metrics =
    let ok =
      with_obs trace metrics @@ fun () ->
      let conn =
        match port with
        | Some p -> Serve.Client.connect_tcp ?sid ~port:p ()
        | None -> Serve.Client.connect ?sid socket
      in
      Fun.protect ~finally:(fun () -> Serve.Client.close conn) @@ fun () ->
      let need_id what =
        match id with
        | Some id -> id
        | None ->
          prerr_endline ("cosched client: " ^ what ^ " needs a job ID");
          exit 2
      in
      let request verb =
        let resp = Serve.Client.request conn ?at verb in
        print_endline (Serve.Protocol.encode_response resp);
        match resp.Serve.Protocol.reply with
        | Serve.Protocol.R_error _ -> false
        | _ -> true
      in
      match action with
      | `Ping -> request Serve.Protocol.Ping
      | `Status -> request Serve.Protocol.(Query Status)
      | `Stats -> request Serve.Protocol.(Query Stats)
      | `Allocs -> request Serve.Protocol.(Query Allocs)
      | `Job -> request Serve.Protocol.(Query (Job (need_id "job")))
      | `Cancel -> request (Serve.Protocol.Cancel (need_id "cancel"))
      | `Drain -> request Serve.Protocol.Drain
      | `Submit ->
        request
          (Serve.Protocol.Submit
             {
               Serve.Protocol.name; w; s; f; m0; c0;
               footprint = Option.value ~default:infinity footprint;
             })
      | `Watch -> (
        let resp = Serve.Client.request conn ?at (Serve.Protocol.Subscribe true) in
        print_endline (Serve.Protocol.encode_response resp);
        try
          let continue = ref true in
          while !continue do
            let push = Serve.Client.wait_push conn in
            print_endline (Serve.Protocol.encode_push push);
            match push with
            | Serve.Protocol.P_drained _ -> continue := false
            | _ -> ()
          done;
          true
        with Serve.Client.Error _ -> true (* daemon exited; watch is done *))
      | `Storm ->
        (* A seeded scenario-timed submit stream: arrival instants become
           request timestamps, so the daemon's virtual clock replays the
           storm deterministically.  Overload rejections are the expected
           behaviour of a shedding daemon under a burst — counted, not
           fatal. *)
        let rng = Util.Rng.create seed in
        let times = Stats.Scenario.arrival_times ~rng arrivals count in
        let submitted = ref 0 and shed = ref 0 and failed = ref 0 in
        Array.iteri
          (fun i at ->
            let w =
              match sizes with
              | None -> w
              | Some d -> Stats.Dist.sample d rng
            in
            let resp =
              Serve.Client.request conn ~at
                (Serve.Protocol.Submit
                   {
                     Serve.Protocol.name = Printf.sprintf "%s-%d" name i;
                     w; s; f; m0; c0;
                     footprint = Option.value ~default:infinity footprint;
                   })
            in
            match resp.Serve.Protocol.reply with
            | Serve.Protocol.R_submitted _ -> incr submitted
            | Serve.Protocol.R_error
                { code = Serve.Protocol.Overload; _ } -> incr shed
            | _ -> incr failed)
          times;
        Printf.printf
          "storm: arrivals=%s jobs=%d submitted=%d shed=%d failed=%d \
           horizon=%.6g\n"
          (Stats.Scenario.to_string arrivals)
          count !submitted !shed !failed
          (if Array.length times = 0 then 0.
           else times.(Array.length times - 1));
        !failed = 0
    in
    if not ok then exit 1
  in
  let term =
    Term.(
      const run $ socket_arg $ port_arg $ sid_arg $ action_arg $ id_arg
      $ at_arg $ name_arg $ w_arg $ s_arg $ f_arg $ m0_arg $ c0_arg
      $ footprint_arg $ seed_arg $ storm_arrivals_arg $ storm_sizes_arg
      $ count_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running co-scheduling daemon and print the \
          JSON response.")
    term

(* --- journal / snapshot inspection -------------------------------------- *)

let journal_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Journal or snapshot file to inspect.")
  in
  let kind_arg =
    Arg.(
      value
      & opt (enum [ ("auto", `Auto); ("journal", `Journal); ("snapshot", `Snapshot) ]) `Auto
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "What FILE is: $(b,journal), $(b,snapshot), or $(b,auto) \
             (sniff the first line).")
  in
  let no_replay_arg =
    Arg.(
      value & flag
      & info [ "no-replay" ]
          ~doc:
            "Skip replaying the journal through a recovery backend (the \
             live-job summary needs a replay; counts and the torn-tail \
             report do not).")
  in
  let sniff file =
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match input_line ic with
        | line
          when String.length line >= 12
               && String.sub line 0 12 = "{\"snapshot\":" -> `Snapshot
        | _ | (exception End_of_file) -> `Journal)
  in
  let copy_file src dst =
    let ic = open_in_bin src in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let oc = open_out_bin dst in
    Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
    let buf = Bytes.create 65536 in
    let rec go () =
      match input ic buf 0 (Bytes.length buf) with
      | 0 -> ()
      | n ->
        output oc buf 0 n;
        go ()
    in
    go ()
  in
  let inspect_snapshot file =
    match Serve.Snapshot.validate ~path:file with
    | Error m ->
      Printf.printf "snapshot %s: INVALID — %s\n" file m;
      false
    | Ok s ->
      let p = s.Serve.Snapshot.persist in
      Printf.printf "snapshot %s: valid (format %d)\n" file
        Serve.Snapshot.format_version;
      Printf.printf "  watermark seq   = %d\n" s.Serve.Snapshot.seq;
      Printf.printf "  model time      = %.6g\n" p.Online.Service.p_time;
      Printf.printf "  live jobs       = %d\n" (List.length p.p_jobs);
      Printf.printf "  completed       = %d   cancelled = %d\n" p.p_completed
        p.p_cancelled;
      Printf.printf "  resolves        = %d   migrations = %d\n" p.p_resolves
        p.p_migrations;
      Printf.printf "  dedup entries   = %d\n"
        (List.length s.Serve.Snapshot.dedup);
      List.iter
        (fun (pj : Online.Service.pjob) ->
          Printf.printf
            "  job %-4d %-12s arrival=%-10.6g remaining=%-12.6g procs=%-6.3g \
             cache=%.3g\n"
            pj.Online.Service.pj_id pj.pj_app.Model.App.name pj.pj_arrival
            pj.pj_remaining pj.pj_procs pj.pj_cache)
        p.p_jobs;
      true
  in
  let inspect_journal ~replay ~procs ~cs file =
    let entries, bad = Campaign.Journal.scan ~path:file in
    let counts = Hashtbl.create 8 in
    let min_seq = ref max_int and max_seq = ref min_int in
    List.iter
      (fun (e : Campaign.Journal.entry) ->
        let verb, seq =
          match String.split_on_char ':' e.key with
          | verb :: seq :: _ -> (verb, int_of_string_opt seq)
          | _ -> ("<malformed>", None)
        in
        Hashtbl.replace counts verb
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts verb));
        Option.iter
          (fun s ->
            if s < !min_seq then min_seq := s;
            if s > !max_seq then max_seq := s)
          seq)
      entries;
    Printf.printf "journal %s: %d intact record(s)\n" file (List.length entries);
    Hashtbl.iter (Printf.printf "  %-12s %d\n") counts;
    if !max_seq >= !min_seq then
      Printf.printf "  seq range       = %d .. %d\n" !min_seq !max_seq;
    (match bad with
    | [] -> print_endline "  torn tail       : none (every line checksums)"
    | bad ->
      Printf.printf "  torn tail       : %d corrupt line(s) would be quarantined on recovery\n"
        (List.length bad);
      List.iteri
        (fun i l ->
          if i < 3 then
            Printf.printf "    %s%s\n"
              (String.sub l 0 (min 60 (String.length l)))
              (if String.length l > 60 then "…" else ""))
        bad);
    if replay then begin
      (* Recovery heals and quarantines in place, so replay a copy: the
         inspected file must come out byte-identical. *)
      let tmp = Filename.temp_file "cosched-journal-inspect" ".jsonl" in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun p -> try Sys.remove p with Sys_error _ -> ())
            [ tmp; Campaign.Journal.quarantine_path tmp ])
        (fun () ->
          copy_file file tmp;
          let backend =
            Serve.Backend.create
              {
                Serve.Backend.default_config with
                platform = platform_of ~procs ~cs;
                journal = Some tmp;
              }
          in
          let resp =
            Serve.Backend.handle backend ~clients:0
              {
                Serve.Protocol.rid = 0;
                sid = None;
                at = None;
                verb = Serve.Protocol.(Query Status);
              }
          in
          print_endline "  recovered state (replayed on a temporary copy):";
          Printf.printf "    %s\n" (Serve.Protocol.encode_response resp))
    end;
    bad = []
  in
  let run file kind no_replay procs cs =
    if not (Sys.file_exists file) then begin
      Printf.eprintf "cosched journal: no such file: %s\n" file;
      exit 2
    end;
    let kind = match kind with `Auto -> sniff file | k -> k in
    let ok =
      match kind with
      | `Snapshot -> inspect_snapshot file
      | `Journal | `Auto -> inspect_journal ~replay:(not no_replay) ~procs ~cs file
    in
    if not ok then exit 1
  in
  let term =
    Term.(const run $ file_arg $ kind_arg $ no_replay_arg $ procs_arg $ cs_arg)
  in
  Cmd.v
    (Cmd.info "journal"
       ~doc:
         "Inspect and validate a daemon journal or snapshot: record counts, \
          torn-tail report, and the live-job summary a recovery would \
          produce.")
    term

let main_cmd =
  let doc = "Co-scheduling algorithms for cache-partitioned systems" in
  Cmd.group (Cmd.info "cosched" ~version:"1.0.0" ~doc)
    [
      experiment_cmd; schedule_cmd; exact_cmd; cachesim_cmd; validate_cmd;
      online_cmd; instance_cmd; refine_cmd; serve_cmd; client_cmd; journal_cmd;
    ]

let () =
  (* A `Trial_failed` report is only actionable with the trial's
     backtrace in it. *)
  Printexc.record_backtrace true;
  exit (Cmd.eval main_cmd)
